#include "ordering/zookeeper.h"

namespace fabricsim::ordering {

ZooKeeperServer::ZooKeeperServer(sim::Environment& env, sim::Machine& machine,
                                 const fabric::Calibration& cal,
                                 ZkConfig config, int index)
    : env_(env), machine_(machine), cal_(cal), config_(config), index_(index) {
  net_id_ = env_.Net().Register(
      "zookeeper" + std::to_string(index),
      [this](sim::NodeId from, sim::MessagePtr msg) {
        OnMessage(from, std::move(msg));
      });
}

void ZooKeeperServer::SetEnsemble(std::vector<sim::NodeId> ensemble) {
  ensemble_ = std::move(ensemble);
}

bool ZooKeeperServer::IsLeader() const {
  return !ensemble_.empty() && ensemble_[leader_slot_] == net_id_;
}

void ZooKeeperServer::Start() {
  if (IsLeader()) {
    env_.Sched().ScheduleAfter(config_.tick, [this] { SweepSessions(); },
                               "zookeeper/session_sweep");
  }
}

std::optional<std::string> ZooKeeperServer::Peek(
    const std::string& path) const {
  auto it = znodes_.find(path);
  if (it == znodes_.end()) return std::nullopt;
  return it->second.data;
}

void ZooKeeperServer::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (auto req = std::dynamic_pointer_cast<const ZkRequestMsg>(msg)) {
    machine_.GetCpu().Submit(cal_.zk_request_cpu, [this, from, req] {
      HandleClientRequest(from, *req);
    });
    return;
  }
  if (auto prop = std::dynamic_pointer_cast<const ZabProposeMsg>(msg)) {
    // Follower: stage the write and ack.
    PendingWrite w;
    w.path = prop->path;
    w.data = prop->data;
    w.is_delete = prop->is_delete;
    pending_commit_[prop->zxid] = std::move(w);
    auto ack = std::make_shared<ZabAckMsg>();
    ack->zxid = prop->zxid;
    env_.Net().Send(net_id_, from, ack);
    return;
  }
  if (auto ack = std::dynamic_pointer_cast<const ZabAckMsg>(msg)) {
    auto it = in_flight_.find(ack->zxid);
    if (it == in_flight_.end()) return;
    PendingWrite& w = it->second;
    ++w.acks;
    // Leader counts itself; quorum = majority of ensemble.
    if (w.acks + 1 >= ensemble_.size() / 2 + 1) {
      ApplyWrite(w.path, w.data, w.is_delete, w.owner_session);
      if (w.requester != sim::kInvalidNode) {
        auto resp = std::make_shared<ZkResponseMsg>();
        resp->request_id = w.request_id;
        resp->ok = true;
        env_.Net().Send(net_id_, w.requester, resp);
      }
      for (sim::NodeId peer : ensemble_) {
        if (peer == net_id_) continue;
        auto commit = std::make_shared<ZabCommitMsg>();
        commit->zxid = it->first;
        env_.Net().Send(net_id_, peer, commit);
      }
      in_flight_.erase(it);
    }
    return;
  }
  if (auto commit = std::dynamic_pointer_cast<const ZabCommitMsg>(msg)) {
    // Apply staged writes up to and including this zxid, in order.
    for (auto it = pending_commit_.begin();
         it != pending_commit_.end() && it->first <= commit->zxid;) {
      ApplyWrite(it->second.path, it->second.data, it->second.is_delete,
                 it->second.owner_session);
      it = pending_commit_.erase(it);
    }
    return;
  }
}

void ZooKeeperServer::HandleClientRequest(sim::NodeId from,
                                          const ZkRequestMsg& m) {
  if (!IsLeader()) {
    // Followers redirect implicitly by failing the request.
    auto resp = std::make_shared<ZkResponseMsg>();
    resp->request_id = m.request_id;
    resp->ok = false;
    env_.Net().Send(net_id_, from, resp);
    return;
  }
  sessions_[m.session_id] = env_.Now();

  switch (m.op) {
    case ZkOp::kHeartbeat: {
      auto resp = std::make_shared<ZkResponseMsg>();
      resp->request_id = m.request_id;
      resp->ok = true;
      env_.Net().Send(net_id_, from, resp);
      return;
    }
    case ZkOp::kGetData: {
      auto resp = std::make_shared<ZkResponseMsg>();
      resp->request_id = m.request_id;
      auto it = znodes_.find(m.path);
      if (it == znodes_.end()) {
        resp->ok = false;
        // A failed read registers a watch: the caller learns when the node
        // appears is not supported; deletion watches are what Kafka needs,
        // so only existing-node watchers are registered on create races.
      } else {
        resp->ok = true;
        resp->data = it->second.data;
      }
      env_.Net().Send(net_id_, from, resp);
      return;
    }
    case ZkOp::kCreateEphemeral: {
      // A create racing with an in-flight create of the same path loses too.
      bool pending_same_path = false;
      for (const auto& [zxid, w] : in_flight_) {
        (void)zxid;
        if (!w.is_delete && w.path == m.path) {
          pending_same_path = true;
          break;
        }
      }
      if (pending_same_path) {
        watches_[m.path].push_back(from);
        auto resp = std::make_shared<ZkResponseMsg>();
        resp->request_id = m.request_id;
        resp->ok = false;
        env_.Net().Send(net_id_, from, resp);
        return;
      }
      auto it = znodes_.find(m.path);
      if (it != znodes_.end()) {
        // Lost the race: fail and watch the node for deletion.
        watches_[m.path].push_back(from);
        auto resp = std::make_shared<ZkResponseMsg>();
        resp->request_id = m.request_id;
        resp->ok = false;
        resp->data = it->second.data;  // current owner
        env_.Net().Send(net_id_, from, resp);
        return;
      }
      PendingWrite w;
      w.path = m.path;
      w.data = m.data;
      w.owner_session = m.session_id;
      w.requester = from;
      w.request_id = m.request_id;
      ProposeWrite(std::move(w));
      return;
    }
  }
}

void ZooKeeperServer::ProposeWrite(PendingWrite w) {
  const std::uint64_t zxid = next_zxid_++;
  for (sim::NodeId peer : ensemble_) {
    if (peer == net_id_) continue;
    auto prop = std::make_shared<ZabProposeMsg>();
    prop->zxid = zxid;
    prop->path = w.path;
    prop->data = w.data;
    prop->is_delete = w.is_delete;
    env_.Net().Send(net_id_, peer, prop);
  }
  if (ensemble_.size() == 1) {
    // Single-server ensemble commits immediately.
    ApplyWrite(w.path, w.data, w.is_delete, w.owner_session);
    if (w.requester != sim::kInvalidNode) {
      auto resp = std::make_shared<ZkResponseMsg>();
      resp->request_id = w.request_id;
      resp->ok = true;
      env_.Net().Send(net_id_, w.requester, resp);
    }
    return;
  }
  in_flight_[zxid] = std::move(w);
}

void ZooKeeperServer::ApplyWrite(const std::string& path,
                                 const std::string& data, bool is_delete,
                                 std::uint64_t owner_session) {
  if (is_delete) {
    znodes_.erase(path);
    if (IsLeader()) FireWatches(path);
  } else {
    znodes_[path] = Znode{data, owner_session};
  }
  ++last_applied_zxid_;
}

void ZooKeeperServer::FireWatches(const std::string& path) {
  auto it = watches_.find(path);
  if (it == watches_.end()) return;
  for (sim::NodeId watcher : it->second) {
    auto ev = std::make_shared<ZkWatchEventMsg>();
    ev->path = path;
    env_.Net().Send(net_id_, watcher, ev);
  }
  watches_.erase(it);
}

void ZooKeeperServer::SweepSessions() {
  const sim::SimTime now = env_.Now();
  std::vector<std::uint64_t> expired;
  for (const auto& [session, last] : sessions_) {
    if (now - last > config_.session_timeout) expired.push_back(session);
  }
  for (std::uint64_t session : expired) {
    sessions_.erase(session);
    // Delete the expired session's ephemeral znodes via replication so all
    // replicas converge; watches fire on apply.
    std::vector<std::string> doomed;
    for (const auto& [path, z] : znodes_) {
      if (z.owner_session == session) doomed.push_back(path);
    }
    for (const auto& path : doomed) {
      PendingWrite w;
      w.path = path;
      w.is_delete = true;
      ProposeWrite(std::move(w));
    }
  }
  env_.Sched().ScheduleAfter(config_.tick, [this] { SweepSessions(); },
                               "zookeeper/session_sweep");
}

ZooKeeperEnsemble::ZooKeeperEnsemble(sim::Environment& env,
                                     const fabric::Calibration& cal,
                                     ZkConfig config,
                                     std::vector<sim::Machine*> machines) {
  for (std::size_t i = 0; i < machines.size(); ++i) {
    servers_.push_back(std::make_unique<ZooKeeperServer>(
        env, *machines[i], cal, config, static_cast<int>(i)));
  }
  std::vector<sim::NodeId> ids = NetIds();
  for (auto& s : servers_) s->SetEnsemble(ids);
}

void ZooKeeperEnsemble::Start() {
  for (auto& s : servers_) s->Start();
}

std::vector<sim::NodeId> ZooKeeperEnsemble::NetIds() const {
  std::vector<sim::NodeId> ids;
  ids.reserve(servers_.size());
  for (const auto& s : servers_) ids.push_back(s->NetId());
  return ids;
}

}  // namespace fabricsim::ordering
