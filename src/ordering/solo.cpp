#include "ordering/solo.h"

namespace fabricsim::ordering {

SoloOrderer::SoloOrderer(sim::Environment& env, sim::Machine& machine,
                         crypto::Identity identity,
                         const fabric::Calibration& cal, BatchConfig batch,
                         metrics::TxTracker* tracker, std::string channel_id)
    : OsnBase(env, machine, std::move(identity), cal, tracker,
              "orderer.solo/" + channel_id, channel_id),
      cutter_(batch) {}

OsnBase::AcceptResult SoloOrderer::AcceptEnvelope(const EnvelopePtr& env,
                                                  std::size_t wire_size,
                                                  sim::NodeId /*origin*/) {
  auto result = cutter_.Ordered(env, wire_size);
  for (auto& batch : result.batches) EmitBatch(std::move(batch));
  if (result.pending) {
    ArmTimerIfNeeded();
  } else if (!result.batches.empty() && timer_ != 0) {
    env_.Sched().Cancel(timer_);
    timer_ = 0;
  }
  return AcceptResult::kOk;
}

void SoloOrderer::ArmTimerIfNeeded() {
  if (timer_ != 0) return;
  timer_ = env_.Sched().ScheduleAfter(cutter_.Config().batch_timeout,
                                      [this] { OnTimeout(); },
                                      "solo/batch_timeout");
}

void SoloOrderer::OnTimeout() {
  timer_ = 0;
  Batch batch = cutter_.Cut();
  if (!batch.empty()) EmitBatch(std::move(batch));
}

void SoloOrderer::EmitBatch(Batch batch) {
  if (timer_ != 0) {
    env_.Sched().Cancel(timer_);
    timer_ = 0;
  }
  AssembleAsync(std::move(batch),
                [this](AssembledBlock built) { FinishBlock(std::move(built)); });
}

void SoloOrderer::OnOtherMessage(sim::NodeId /*from*/,
                                 const sim::MessagePtr& /*msg*/) {
  // Solo has no consenter-internal traffic.
}

}  // namespace fabricsim::ordering
