#include "ordering/kafka_orderer.h"

namespace fabricsim::ordering {

KafkaOrderer::KafkaOrderer(sim::Environment& env, sim::Machine& machine,
                           crypto::Identity identity,
                           const fabric::Calibration& cal, BatchConfig batch,
                           metrics::TxTracker* tracker, int index,
                           std::vector<sim::NodeId> zk_ids,
                           std::string channel_id)
    : OsnBase(env, machine, std::move(identity), cal, tracker,
              "orderer.kafka" + std::to_string(index) + "/" + channel_id,
              channel_id),
      cutter_(batch),
      zk_ids_(std::move(zk_ids)) {}

void KafkaOrderer::Start() {
  DiscoverLeader();
  WatchdogTick();
}

void KafkaOrderer::WatchdogTick() {
  // A long-poll fetch parked at a crashed leader never returns and produces
  // to it vanish; if the broker has been silent too long while we have a
  // fetch or unacked records outstanding, rediscover the partition leader
  // (ZooKeeper's session expiry will have moved the controller znode) and
  // resend everything unacknowledged. Duplicate records that slip through
  // are screened as DUPLICATE_TXID by the committers, as in Fabric.
  constexpr sim::SimDuration kSilenceLimit = sim::FromSeconds(8);
  const bool outstanding = fetch_in_flight_ || unacked_ > 0;
  if (outstanding && partition_leader_ != sim::kInvalidNode &&
      env_.Now() - last_broker_contact_ > kSilenceLimit) {
    partition_leader_ = sim::kInvalidNode;
    fetch_in_flight_ = false;
    unacked_ = 0;
    DiscoverLeader();
  } else if (fetch_in_flight_ && partition_leader_ != sim::kInvalidNode &&
             env_.Now() - fetch_sent_at_ > kSilenceLimit) {
    // The fetch (or its response) was lost on the wire while produce acks
    // kept the broker "in contact" — found by the chaos fuzzer as a
    // permanent consume stall under 5% loss. Re-fetch from the same
    // offset. If the original long poll was merely parked (quiet
    // partition, nothing lost), the broker may end up answering both
    // fetches; the offset guard in the fetch-response handler makes the
    // duplicate delivery a no-op.
    SendFetch();
  }
  env_.Sched().ScheduleAfter(sim::FromSeconds(2), [this] { WatchdogTick(); },
                             "kafka_orderer/watchdog");
}

void KafkaOrderer::SendZk(ZkOp op, const std::string& path,
                          const std::string& data,
                          std::function<void(const ZkResponseMsg&)> on_reply) {
  auto req = std::make_shared<ZkRequestMsg>();
  req->op = op;
  req->path = path;
  req->data = data;
  req->session_id = static_cast<std::uint64_t>(NetId()) + 1;
  req->request_id = next_zk_request_++;
  if (on_reply) zk_callbacks_[req->request_id] = std::move(on_reply);
  env_.Net().Send(NetId(), zk_ids_.front(), req);
}

void KafkaOrderer::DiscoverLeader() {
  SendZk(ZkOp::kGetData, "/controller/" + ChannelId(), "",
         [this](const ZkResponseMsg& resp) {
           if (!resp.ok || resp.data.empty()) {
             // No controller yet; retry shortly.
             env_.Sched().ScheduleAfter(sim::FromMillis(500),
                                        [this] { DiscoverLeader(); },
                                        "kafka_orderer/discover_leader");
             return;
           }
           partition_leader_ =
               static_cast<sim::NodeId>(std::stol(resp.data));
           last_broker_contact_ = env_.Now();
           FlushOutbox();
           if (!fetch_in_flight_) SendFetch();
         });
}

void KafkaOrderer::SendFetch() {
  if (partition_leader_ == sim::kInvalidNode) return;
  auto fetch = std::make_shared<KafkaFetchMsg>();
  fetch->offset = next_offset_;
  fetch_in_flight_ = true;
  fetch_sent_at_ = env_.Now();
  env_.Net().Send(NetId(), partition_leader_, fetch);
}

OsnBase::AcceptResult KafkaOrderer::AcceptEnvelope(const EnvelopePtr& env,
                                                   std::size_t wire_size,
                                                   sim::NodeId /*origin*/) {
  KafkaRecord rec;
  rec.env = env;
  rec.env_bytes = wire_size;
  ProduceRecord(std::move(rec));
  return AcceptResult::kOk;
}

void KafkaOrderer::ProduceRecord(KafkaRecord rec) {
  outbox_.push_back(std::move(rec));
  FlushOutbox();
}

void KafkaOrderer::FlushOutbox() {
  if (partition_leader_ == sim::kInvalidNode) {
    DiscoverLeader();
    return;
  }
  // Send everything not yet in flight.
  while (unacked_ < outbox_.size()) {
    auto msg = std::make_shared<KafkaProduceMsg>();
    msg->record = outbox_[unacked_];
    env_.Net().Send(NetId(), partition_leader_, msg);
    ++unacked_;
  }
}

void KafkaOrderer::OnOtherMessage(sim::NodeId /*from*/,
                                  const sim::MessagePtr& msg) {
  if (auto resp = std::dynamic_pointer_cast<const ZkResponseMsg>(msg)) {
    auto it = zk_callbacks_.find(resp->request_id);
    if (it != zk_callbacks_.end()) {
      auto cb = std::move(it->second);
      zk_callbacks_.erase(it);
      cb(*resp);
    }
    return;
  }
  if (auto ack = std::dynamic_pointer_cast<const KafkaProduceAckMsg>(msg)) {
    last_broker_contact_ = env_.Now();
    if (!ack->ok) {
      // Leader moved: rediscover and resend the whole outbox.
      partition_leader_ = sim::kInvalidNode;
      unacked_ = 0;
      DiscoverLeader();
      return;
    }
    if (!outbox_.empty()) {
      outbox_.pop_front();
      if (unacked_ > 0) --unacked_;
    }
    return;
  }
  if (auto fr = std::dynamic_pointer_cast<const KafkaFetchResponseMsg>(msg)) {
    last_broker_contact_ = env_.Now();
    fetch_in_flight_ = false;
    // Consume strictly by partition offset. The watchdog's re-fetch can
    // leave two fetches for the same offset at the broker (the original
    // long-poll parked with no data plus the retry); if records commit in
    // that window the broker answers both, and blindly consuming the
    // second copy would feed the cutter duplicate records — shifting this
    // OSN's block boundaries off the other OSNs' and forking its
    // subscribed peers (found by the chaos fuzzer as a chain-fork under a
    // loss window). Committer tx-id dedup cannot help here: the fork is in
    // the block stream itself, so consumption must be idempotent.
    for (const auto& rec : fr->records) {
      if (rec.offset < next_offset_) continue;  // stale duplicate delivery
      ProcessRecord(rec);
      next_offset_ = rec.offset + 1;
    }
    if (fr->next_offset > next_offset_) next_offset_ = fr->next_offset;
    SendFetch();
    return;
  }
}

void KafkaOrderer::ProcessRecord(const KafkaRecord& rec) {
  if (rec.IsTtc()) {
    // Cut only on the first TTC for the block we are currently filling.
    if (rec.ttc_block_number == assembler_.NextNumber()) {
      if (timer_ != 0) {
        env_.Sched().Cancel(timer_);
        timer_ = 0;
      }
      Batch batch = cutter_.Cut();
      if (!batch.empty()) EmitBatch(std::move(batch));
    }
    return;
  }
  auto result = cutter_.Ordered(rec.env, rec.env_bytes);
  for (auto& batch : result.batches) EmitBatch(std::move(batch));
  if (result.pending) ArmTimerIfNeeded();
}

void KafkaOrderer::ArmTimerIfNeeded() {
  if (timer_ != 0) return;
  timer_ = env_.Sched().ScheduleAfter(cutter_.Config().batch_timeout,
                                      [this] { OnTimeout(); },
                                      "kafka_orderer/batch_timeout");
}

void KafkaOrderer::OnTimeout() {
  timer_ = 0;
  // Produce a TTC record; the cut happens when it comes back through the
  // partition, keeping all OSNs in lockstep.
  KafkaRecord ttc;
  ttc.ttc_block_number = assembler_.NextNumber();
  ProduceRecord(std::move(ttc));
}

void KafkaOrderer::EmitBatch(Batch batch) {
  if (timer_ != 0) {
    env_.Sched().Cancel(timer_);
    timer_ = 0;
  }
  AssembleAsync(std::move(batch), [this](AssembledBlock built) {
    FinishBlock(std::move(built));
  });
}

}  // namespace fabricsim::ordering
