// Wire messages exchanged by clients, ordering service nodes, Kafka brokers,
// ZooKeeper servers, and peers. Sizes approximate the gRPC/Kafka framings of
// the real stacks so the simulated 1 Gbps network sees realistic loads.
#pragma once

#include <utility>
#include <vector>

#include "ordering/block_cutter.h"
#include "proto/block.h"
#include "sim/network.h"

namespace fabricsim::ordering {

// ---------------------------------------------------------------- broadcast

/// Client -> OSN: submit one envelope for ordering (Broadcast RPC).
class BroadcastEnvelopeMsg final : public sim::Message {
 public:
  BroadcastEnvelopeMsg(EnvelopePtr env, std::size_t wire_size,
                       sim::SimTime sent_at = 0)
      : env_(std::move(env)), wire_size_(wire_size), sent_at_(sent_at) {}

  [[nodiscard]] const EnvelopePtr& Envelope() const { return env_; }
  [[nodiscard]] std::size_t WireSize() const override { return wire_size_; }
  [[nodiscard]] std::string TypeName() const override {
    return "BroadcastEnvelope";
  }
  /// Send timestamp, for wire-time spans (0 when tracing is off).
  [[nodiscard]] sim::SimTime SentAt() const { return sent_at_; }

 private:
  EnvelopePtr env_;
  std::size_t wire_size_;
  sim::SimTime sent_at_;
};

/// Fate of a broadcast at the OSN, mirroring Fabric's common.Status on the
/// Broadcast RPC: SUCCESS, a hard BAD_REQUEST-style rejection, or
/// SERVICE_UNAVAILABLE when the ingress queue is full.
enum class BroadcastStatus : std::uint8_t {
  kOk = 0,
  kRejected = 1,
  kOverloaded = 2,
};

/// OSN -> client: broadcast accepted/rejected/shed.
class BroadcastAckMsg final : public sim::Message {
 public:
  BroadcastAckMsg(std::string tx_id, bool ok)
      : tx_id_(std::move(tx_id)),
        status_(ok ? BroadcastStatus::kOk : BroadcastStatus::kRejected) {}
  BroadcastAckMsg(std::string tx_id, BroadcastStatus status,
                  sim::SimDuration retry_after = 0)
      : tx_id_(std::move(tx_id)), status_(status), retry_after_(retry_after) {}

  [[nodiscard]] const std::string& TxId() const { return tx_id_; }
  [[nodiscard]] bool Ok() const { return status_ == BroadcastStatus::kOk; }
  [[nodiscard]] BroadcastStatus Status() const { return status_; }
  /// Advisory pause before retrying, set on kOverloaded nacks.
  [[nodiscard]] sim::SimDuration RetryAfter() const { return retry_after_; }
  [[nodiscard]] std::size_t WireSize() const override {
    return tx_id_.size() + 16;
  }
  [[nodiscard]] std::string TypeName() const override { return "BroadcastAck"; }

 private:
  std::string tx_id_;
  BroadcastStatus status_;
  sim::SimDuration retry_after_ = 0;
};

/// OSN -> OSN: a non-leader forwards an envelope to the consenter leader.
/// With admission control on, `origin` carries the submitting client so the
/// leader can ack (or shed) the forwarded envelope directly.
class ForwardEnvelopeMsg final : public sim::Message {
 public:
  ForwardEnvelopeMsg(EnvelopePtr env, std::size_t wire_size,
                     sim::NodeId origin = sim::kInvalidNode)
      : env_(std::move(env)), wire_size_(wire_size), origin_(origin) {}

  [[nodiscard]] const EnvelopePtr& Envelope() const { return env_; }
  [[nodiscard]] sim::NodeId Origin() const { return origin_; }
  [[nodiscard]] std::size_t WireSize() const override { return wire_size_; }
  [[nodiscard]] std::string TypeName() const override {
    return "ForwardEnvelope";
  }

 private:
  EnvelopePtr env_;
  std::size_t wire_size_;
  sim::NodeId origin_;
};

// ------------------------------------------------------------------ deliver

/// OSN -> peer (or peer -> peer for gossip): a cut block on a channel.
class DeliverBlockMsg final : public sim::Message {
 public:
  DeliverBlockMsg(proto::BlockPtr block, std::size_t wire_size,
                  std::string channel_id = "mychannel",
                  sim::SimTime sent_at = 0, bool ack_requested = false)
      : block_(std::move(block)),
        wire_size_(wire_size),
        channel_id_(std::move(channel_id)),
        sent_at_(sent_at),
        ack_requested_(ack_requested) {}

  [[nodiscard]] const proto::BlockPtr& GetBlock() const { return block_; }
  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }
  [[nodiscard]] std::size_t WireSize() const override { return wire_size_; }
  [[nodiscard]] std::string TypeName() const override { return "DeliverBlock"; }
  /// Send timestamp, for wire-time spans (0 when tracing is off).
  [[nodiscard]] sim::SimTime SentAt() const { return sent_at_; }
  /// Set on windowed backfill deliveries: the receiving peer must send a
  /// DeliverAckMsg so the OSN can advance the backfill window.
  [[nodiscard]] bool AckRequested() const { return ack_requested_; }

 private:
  proto::BlockPtr block_;
  std::size_t wire_size_;
  std::string channel_id_;
  sim::SimTime sent_at_;
  bool ack_requested_;
};

/// Peer -> OSN: flow-control ack for one windowed backfill block.
class DeliverAckMsg final : public sim::Message {
 public:
  DeliverAckMsg(std::string channel_id, std::uint64_t block_number)
      : channel_id_(std::move(channel_id)), block_number_(block_number) {}

  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }
  [[nodiscard]] std::uint64_t BlockNumber() const { return block_number_; }
  [[nodiscard]] std::size_t WireSize() const override {
    return 24 + channel_id_.size();
  }
  [[nodiscard]] std::string TypeName() const override { return "DeliverAck"; }

 private:
  std::string channel_id_;
  std::uint64_t block_number_;
};

/// Peer -> OSN: deliver-stream liveness probe. Peers with deliver failover
/// enabled ping the OSN they are subscribed to; consecutive missed pongs
/// trigger re-subscription to an alternate OSN.
class DeliverPingMsg final : public sim::Message {
 public:
  explicit DeliverPingMsg(std::string channel_id)
      : channel_id_(std::move(channel_id)) {}

  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }
  [[nodiscard]] std::size_t WireSize() const override {
    return 24 + channel_id_.size();
  }
  [[nodiscard]] std::string TypeName() const override { return "DeliverPing"; }

 private:
  std::string channel_id_;
};

/// OSN -> peer: the deliver stream is alive.
class DeliverPongMsg final : public sim::Message {
 public:
  explicit DeliverPongMsg(std::string channel_id)
      : channel_id_(std::move(channel_id)) {}

  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }
  [[nodiscard]] std::size_t WireSize() const override {
    return 24 + channel_id_.size();
  }
  [[nodiscard]] std::string TypeName() const override { return "DeliverPong"; }

 private:
  std::string channel_id_;
};

/// Peer -> OSN: (re-)subscribe to block delivery starting at `from_number`
/// (the peer's current chain height). The OSN backfills every block it has
/// already delivered from that number on — Fabric's Deliver seek semantics.
class SubscribeRequestMsg final : public sim::Message {
 public:
  SubscribeRequestMsg(std::string channel_id, std::uint64_t from_number)
      : channel_id_(std::move(channel_id)), from_number_(from_number) {}

  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }
  [[nodiscard]] std::uint64_t FromNumber() const { return from_number_; }
  [[nodiscard]] std::size_t WireSize() const override {
    return 32 + channel_id_.size();
  }
  [[nodiscard]] std::string TypeName() const override {
    return "SubscribeRequest";
  }

 private:
  std::string channel_id_;
  std::uint64_t from_number_;
};

/// Peer -> OSN: "what block hash did you deliver at this number?" Sent by
/// peers with Byzantine defense enabled to cross-check every delivered block
/// against a *different* OSN before releasing it to the committer — an
/// equivocating OSN cannot answer for the honest copy it never produced.
class BlockAttestRequestMsg final : public sim::Message {
 public:
  BlockAttestRequestMsg(std::string channel_id, std::uint64_t block_number)
      : channel_id_(std::move(channel_id)), block_number_(block_number) {}

  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }
  [[nodiscard]] std::uint64_t BlockNumber() const { return block_number_; }
  [[nodiscard]] std::size_t WireSize() const override {
    return 32 + channel_id_.size();
  }
  [[nodiscard]] std::string TypeName() const override {
    return "BlockAttestRequest";
  }

 private:
  std::string channel_id_;
  std::uint64_t block_number_;
};

/// OSN -> peer: the header hash this OSN holds for the requested block
/// number (`known == false` when the block is not yet in its history).
class BlockAttestReplyMsg final : public sim::Message {
 public:
  BlockAttestReplyMsg(std::string channel_id, std::uint64_t block_number,
                      bool known, crypto::Digest hash)
      : channel_id_(std::move(channel_id)),
        block_number_(block_number),
        known_(known),
        hash_(hash) {}

  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }
  [[nodiscard]] std::uint64_t BlockNumber() const { return block_number_; }
  [[nodiscard]] bool Known() const { return known_; }
  [[nodiscard]] const crypto::Digest& HeaderHash() const { return hash_; }
  [[nodiscard]] std::size_t WireSize() const override {
    return 40 + channel_id_.size() + hash_.size();
  }
  [[nodiscard]] std::string TypeName() const override {
    return "BlockAttestReply";
  }

 private:
  std::string channel_id_;
  std::uint64_t block_number_;
  bool known_;
  crypto::Digest hash_;
};

// --------------------------------------------------------------------- raft

/// One replicated log entry: the Raft orderer replicates whole blocks.
struct RaftEntry {
  std::uint64_t term = 0;
  proto::BlockPtr block;
  std::size_t block_bytes = 0;
};

class RequestVoteMsg final : public sim::Message {
 public:
  std::uint64_t term = 0;
  sim::NodeId candidate = sim::kInvalidNode;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;

  [[nodiscard]] std::size_t WireSize() const override { return 48; }
  [[nodiscard]] std::string TypeName() const override { return "RequestVote"; }
};

class RequestVoteReplyMsg final : public sim::Message {
 public:
  std::uint64_t term = 0;
  bool granted = false;

  [[nodiscard]] std::size_t WireSize() const override { return 24; }
  [[nodiscard]] std::string TypeName() const override {
    return "RequestVoteReply";
  }
};

class AppendEntriesMsg final : public sim::Message {
 public:
  std::uint64_t term = 0;
  sim::NodeId leader = sim::kInvalidNode;
  std::uint64_t prev_log_index = 0;
  std::uint64_t prev_log_term = 0;
  std::vector<RaftEntry> entries;
  std::uint64_t leader_commit = 0;

  [[nodiscard]] std::size_t WireSize() const override {
    std::size_t n = 56;
    for (const auto& e : entries) n += 16 + e.block_bytes;
    return n;
  }
  [[nodiscard]] std::string TypeName() const override {
    return "AppendEntries";
  }
};

class AppendEntriesReplyMsg final : public sim::Message {
 public:
  std::uint64_t term = 0;
  bool success = false;
  std::uint64_t match_index = 0;  // on success: last replicated index
  std::uint64_t hint_index = 0;   // on failure: follower's log length hint

  [[nodiscard]] std::size_t WireSize() const override { return 40; }
  [[nodiscard]] std::string TypeName() const override {
    return "AppendEntriesReply";
  }
};

// -------------------------------------------------------------------- kafka

/// One record in the Kafka partition: either an envelope or a time-to-cut
/// marker (Fabric's Kafka consenter protocol).
struct KafkaRecord {
  EnvelopePtr env;                  // null for TTC records
  std::size_t env_bytes = 0;
  std::uint64_t ttc_block_number = 0;  // valid when env == nullptr
  std::uint64_t offset = 0;            // assigned by the partition leader

  [[nodiscard]] bool IsTtc() const { return env == nullptr; }
  [[nodiscard]] std::size_t Bytes() const { return IsTtc() ? 24 : env_bytes; }
};

/// OSN -> partition-leader broker: produce one record.
class KafkaProduceMsg final : public sim::Message {
 public:
  KafkaRecord record;

  [[nodiscard]] std::size_t WireSize() const override {
    return 48 + record.Bytes();
  }
  [[nodiscard]] std::string TypeName() const override { return "KafkaProduce"; }
};

/// Leader broker -> producer OSN: record committed (all ISR acked).
class KafkaProduceAckMsg final : public sim::Message {
 public:
  std::uint64_t offset = 0;
  bool ok = false;

  [[nodiscard]] std::size_t WireSize() const override { return 24; }
  [[nodiscard]] std::string TypeName() const override {
    return "KafkaProduceAck";
  }
};

/// Leader broker -> follower broker: replicate records (in-sync replica).
class KafkaReplicateMsg final : public sim::Message {
 public:
  std::vector<KafkaRecord> records;
  std::uint64_t high_watermark = 0;

  [[nodiscard]] std::size_t WireSize() const override {
    std::size_t n = 32;
    for (const auto& r : records) n += 16 + r.Bytes();
    return n;
  }
  [[nodiscard]] std::string TypeName() const override {
    return "KafkaReplicate";
  }
};

/// Follower broker -> leader broker: replicated up to `log_end`.
class KafkaReplicateAckMsg final : public sim::Message {
 public:
  std::uint64_t log_end = 0;

  [[nodiscard]] std::size_t WireSize() const override { return 16; }
  [[nodiscard]] std::string TypeName() const override {
    return "KafkaReplicateAck";
  }
};

/// Consumer OSN -> leader broker: long-poll fetch from `offset`.
class KafkaFetchMsg final : public sim::Message {
 public:
  std::uint64_t offset = 0;

  [[nodiscard]] std::size_t WireSize() const override { return 32; }
  [[nodiscard]] std::string TypeName() const override { return "KafkaFetch"; }
};

/// Leader broker -> consumer OSN: committed records from the fetch offset.
class KafkaFetchResponseMsg final : public sim::Message {
 public:
  std::vector<KafkaRecord> records;
  std::uint64_t next_offset = 0;

  [[nodiscard]] std::size_t WireSize() const override {
    std::size_t n = 32;
    for (const auto& r : records) n += 16 + r.Bytes();
    return n;
  }
  [[nodiscard]] std::string TypeName() const override {
    return "KafkaFetchResponse";
  }
};

// ---------------------------------------------------------------- zookeeper

enum class ZkOp : std::uint8_t {
  kCreateEphemeral,  // path, owner session
  kGetData,          // path
  kHeartbeat,        // session keep-alive
};

/// Broker -> ZooKeeper server: client request.
class ZkRequestMsg final : public sim::Message {
 public:
  ZkOp op = ZkOp::kHeartbeat;
  std::string path;
  std::string data;
  std::uint64_t session_id = 0;
  std::uint64_t request_id = 0;

  [[nodiscard]] std::size_t WireSize() const override {
    return 48 + path.size() + data.size();
  }
  [[nodiscard]] std::string TypeName() const override { return "ZkRequest"; }
};

/// ZooKeeper server -> broker: reply.
class ZkResponseMsg final : public sim::Message {
 public:
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string data;

  [[nodiscard]] std::size_t WireSize() const override {
    return 32 + data.size();
  }
  [[nodiscard]] std::string TypeName() const override { return "ZkResponse"; }
};

/// ZooKeeper server -> watcher: a watched path changed (node deleted).
class ZkWatchEventMsg final : public sim::Message {
 public:
  std::string path;

  [[nodiscard]] std::size_t WireSize() const override {
    return 24 + path.size();
  }
  [[nodiscard]] std::string TypeName() const override { return "ZkWatchEvent"; }
};

/// ZAB-lite intra-ensemble replication: leader -> follower proposal.
class ZabProposeMsg final : public sim::Message {
 public:
  std::uint64_t zxid = 0;
  std::string path;
  std::string data;
  bool is_delete = false;

  [[nodiscard]] std::size_t WireSize() const override {
    return 40 + path.size() + data.size();
  }
  [[nodiscard]] std::string TypeName() const override { return "ZabPropose"; }
};

/// Follower -> leader: proposal acknowledged.
class ZabAckMsg final : public sim::Message {
 public:
  std::uint64_t zxid = 0;

  [[nodiscard]] std::size_t WireSize() const override { return 16; }
  [[nodiscard]] std::string TypeName() const override { return "ZabAck"; }
};

/// Leader -> followers: commit a proposal.
class ZabCommitMsg final : public sim::Message {
 public:
  std::uint64_t zxid = 0;

  [[nodiscard]] std::size_t WireSize() const override { return 16; }
  [[nodiscard]] std::string TypeName() const override { return "ZabCommit"; }
};

}  // namespace fabricsim::ordering
