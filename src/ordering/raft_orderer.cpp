#include "ordering/raft_orderer.h"

#include "obs/trace.h"

namespace fabricsim::ordering {

RaftOrderer::RaftOrderer(sim::Environment& env, sim::Machine& machine,
                         crypto::Identity identity,
                         const fabric::Calibration& cal, BatchConfig batch,
                         RaftConfig raft_config, metrics::TxTracker* tracker,
                         int index, std::string channel_id)
    : OsnBase(env, machine, std::move(identity), cal, tracker,
              "orderer.raft" + std::to_string(index) + "/" + channel_id,
              channel_id),
      raft_config_(raft_config),
      cutter_(batch) {}

void RaftOrderer::SetGroup(const std::vector<sim::NodeId>& group) {
  raft_ = std::make_unique<RaftNode>(
      env_.Sched(), env_.Net(), env_.ForkRng(), NetId(), group, raft_config_,
      [this](std::uint64_t index, const RaftEntry& entry) {
        OnCommitted(index, entry);
      });
  raft_->SetLeadershipCallback(
      [this](bool is_leader) { OnLeadershipChange(is_leader); });
}

void RaftOrderer::Start() { raft_->Start(); }

void RaftOrderer::RestartAfterCrash() {
  const bool was_leader = raft_->IsLeader();
  // Ingress state is volatile: whatever was queued died with the process.
  ResetAdmission();
  raft_->RestartAfterCrash();
  // The leadership callback does not fire inside RestartAfterCrash; drop
  // the block-cutter timer ourselves when leadership was just lost.
  if (was_leader) OnLeadershipChange(false);
}

void RaftOrderer::OnLeadershipChange(bool is_leader) {
  if (!is_leader) {
    if (timer_ != 0) {
      env_.Sched().Cancel(timer_);
      timer_ = 0;
    }
    // Envelopes parked in the cutter ride out the demotion (they get cut
    // if leadership returns), but their ingress slots must not: release
    // them now so the window keeps admitting for the new leader.
    if (AdmissionEnabled()) {
      for (const auto& env : cutter_.Pending()) ReleaseAdmittedTx(env->tx_id);
    }
    return;
  }
  // Continue the chain from the tail of the (replicated) log.
  const std::uint64_t last = raft_->LogSize();
  if (last == 0) {
    assembler_.SetNext(GenesisNextNumber(), GenesisHash());
  } else {
    const RaftEntry* tail = raft_->EntryAt(last);
    assembler_.SetNext(tail->block->header.number + 1,
                       tail->block->header.Hash());
  }
}

OsnBase::AcceptResult RaftOrderer::AcceptEnvelope(const EnvelopePtr& env,
                                                  std::size_t wire_size,
                                                  sim::NodeId origin) {
  if (raft_ == nullptr) return AcceptResult::kNack;
  if (raft_->IsLeader()) {
    LeaderEnqueue(env, wire_size);
    return AcceptResult::kOk;
  }
  const auto leader = raft_->KnownLeader();
  if (!leader) return AcceptResult::kNack;  // no leader yet: client retries
  if (AdmissionEnabled()) {
    // Relay with the origin attached: the leader runs the envelope through
    // its own bounded ingress and acks (or sheds) the client directly, so
    // a follower's ack can never outlive the leader's queue space.
    env_.Net().Send(NetId(), *leader,
                    std::make_shared<ForwardEnvelopeMsg>(env, wire_size,
                                                         origin));
    return AcceptResult::kDeferred;
  }
  env_.Net().Send(NetId(), *leader,
                  std::make_shared<ForwardEnvelopeMsg>(env, wire_size));
  return AcceptResult::kOk;
}

void RaftOrderer::LeaderEnqueue(const EnvelopePtr& env,
                                std::size_t wire_size) {
  auto result = cutter_.Ordered(env, wire_size);
  for (auto& batch : result.batches) ProposeBatch(std::move(batch));
  if (result.pending) {
    ArmTimerIfNeeded();
  } else if (!result.batches.empty() && timer_ != 0) {
    env_.Sched().Cancel(timer_);
    timer_ = 0;
  }
}

void RaftOrderer::ArmTimerIfNeeded() {
  if (timer_ != 0) return;
  timer_ = env_.Sched().ScheduleAfter(cutter_.Config().batch_timeout,
                                      [this] { OnTimeout(); },
                                      "raft_orderer/batch_timeout");
}

void RaftOrderer::OnTimeout() {
  timer_ = 0;
  if (!raft_->IsLeader()) return;
  Batch batch = cutter_.Cut();
  if (!batch.empty()) ProposeBatch(std::move(batch));
}

void RaftOrderer::ProposeBatch(Batch batch) {
  if (timer_ != 0) {
    env_.Sched().Cancel(timer_);
    timer_ = 0;
  }
  AssembleAsync(std::move(batch), [this](AssembledBlock built) {
    // Leadership may have moved while the CPU was busy; dropping the block
    // here mirrors Fabric (clients learn via missing commit events).
    if (raft_->IsLeader()) {
      if (auto* tr = env_.Trace()) {
        tr->Begin(tr->PidFor(machine_.Name()), obs::SpanKind::kWire,
                  "raft.replicate",
                  "block:" + channel_id_ + ":" +
                      std::to_string(built.block->header.number),
                  env_.Now());
      }
      raft_->Propose(built.block, built.wire_size);
    } else if (AdmissionEnabled()) {
      // The dropped block's txs will never reach FinishBlock here; free
      // the ingress slots they held so the window cannot shrink for good.
      for (const auto& tx : built.block->transactions) {
        ReleaseAdmittedTx(tx.tx_id);
      }
    }
  });
}

void RaftOrderer::OnCommitted(std::uint64_t index, const RaftEntry& entry) {
  last_delivered_raft_index_ = index;
  if (auto* tr = env_.Trace()) {
    // First OSN to learn of the commit closes the replication span.
    tr->End("block:" + channel_id_ + ":" +
                std::to_string(entry.block->header.number),
            "raft.replicate", env_.Now());
  }
  AssembledBlock b;
  b.block = entry.block;
  b.wire_size = entry.block_bytes;
  b.cpu_cost = 0;
  FinishBlock(std::move(b));
}

void RaftOrderer::OnOtherMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (raft_ != nullptr && raft_->OnMessage(from, msg)) return;
  if (auto fwd = std::dynamic_pointer_cast<const ForwardEnvelopeMsg>(msg)) {
    if (fwd->Origin() != sim::kInvalidNode) {
      // Admission-controlled relay: run the forwarded envelope through
      // this node's own bounded ingress; the origin client is acked (or
      // overload-nacked) from here.
      if (raft_ != nullptr && raft_->IsLeader()) {
        AdmitForVerify({fwd->Origin(), fwd->Envelope(), fwd->WireSize()});
      } else {
        // Leadership moved mid-flight: nack so the client rotates rather
        // than waiting out its broadcast timeout.
        env_.Net().Send(NetId(), fwd->Origin(),
                        std::make_shared<BroadcastAckMsg>(
                            fwd->Envelope()->tx_id, false));
      }
      return;
    }
    if (raft_ != nullptr && raft_->IsLeader()) {
      // Charge the same verification the leader would do for a direct
      // broadcast (Fabric re-validates forwarded envelopes).
      machine_.GetCpu().Submit(
          cal_.orderer_verify_cpu,
          [this, env = fwd->Envelope(), size = fwd->WireSize()] {
            if (raft_->IsLeader()) LeaderEnqueue(env, size);
          },
          /*high_priority=*/true);
    }
    // Not the leader (leadership moved mid-flight): drop; client retries.
    return;
  }
}

}  // namespace fabricsim::ordering
