// Block cutter: the BatchSize / BatchTimeout logic every ordering service
// shares (Fabric's orderer/common/blockcutter).
//
// A batch is cut when any of:
//   - pending transaction count reaches BatchSize.MaxMessageCount,
//   - pending byte size would exceed PreferredMaxBytes,
//   - a message alone exceeds PreferredMaxBytes (cut as its own batch),
//   - BatchTimeout fires with pending transactions (the *caller* owns the
//     timer — Solo arms a local timer, Kafka/Raft use a TTC signal — and
//     calls Cut()).
#pragma once

#include <memory>
#include <vector>

#include "proto/transaction.h"
#include "sim/time.h"

namespace fabricsim::ordering {

using EnvelopePtr = std::shared_ptr<const proto::TransactionEnvelope>;
using Batch = std::vector<EnvelopePtr>;

struct BatchConfig {
  std::uint32_t max_message_count = 100;        // the paper's BatchSize
  std::size_t preferred_max_bytes = 512 * 1024;
  std::size_t absolute_max_bytes = 10 * 1024 * 1024;
  sim::SimDuration batch_timeout = sim::FromSeconds(1);  // paper default
};

class BlockCutter {
 public:
  explicit BlockCutter(BatchConfig config) : config_(config) {}

  /// Result of offering one message to the cutter.
  struct OrderedResult {
    std::vector<Batch> batches;  // 0, 1, or 2 cut batches
    bool pending = false;        // messages remain buffered after this call
  };

  /// Offers one envelope (Fabric's Ordered()). `size_bytes` is the
  /// envelope's serialized size (passed in to avoid re-serializing).
  OrderedResult Ordered(EnvelopePtr env, std::size_t size_bytes);

  /// Cuts whatever is pending (BatchTimeout path). Empty if nothing pending.
  Batch Cut();

  [[nodiscard]] std::size_t PendingCount() const { return pending_.size(); }
  [[nodiscard]] std::size_t PendingBytes() const { return pending_bytes_; }
  /// Buffered envelopes awaiting a cut (admission bookkeeping on
  /// leadership change needs their tx ids).
  [[nodiscard]] const Batch& Pending() const { return pending_; }
  [[nodiscard]] const BatchConfig& Config() const { return config_; }

 private:
  BatchConfig config_;
  Batch pending_;
  std::size_t pending_bytes_ = 0;
};

}  // namespace fabricsim::ordering
