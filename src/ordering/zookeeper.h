// ZooKeeper ensemble model.
//
// Provides what the Kafka ordering service needs from ZooKeeper, with real
// message traffic over the simulated network:
//   - client sessions kept alive by heartbeats, expired on silence,
//   - ephemeral znodes deleted on session expiry,
//   - creation races (first CreateEphemeral wins; losers are auto-watched
//     and get a watch event when the node is deleted) — the standard
//     controller-election recipe,
//   - ZAB-lite write replication: the ensemble leader proposes each write,
//     commits on quorum ack, and followers apply commits in zxid order.
//
// Simplification vs real ZAB: the ensemble leader is the first server
// (no leader re-election; the Kafka experiments never kill ZooKeeper
// servers, and broker failover is what the paper's §III discusses). Reads
// are served by the leader (linearizable reads).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/calibration.h"
#include "ordering/messages.h"
#include "sim/machine.h"

namespace fabricsim::ordering {

struct ZkConfig {
  sim::SimDuration session_timeout = sim::FromSeconds(6);
  sim::SimDuration tick = sim::FromSeconds(1);  // expiry sweep interval
};

class ZooKeeperServer {
 public:
  ZooKeeperServer(sim::Environment& env, sim::Machine& machine,
                  const fabric::Calibration& cal, ZkConfig config, int index);

  void SetEnsemble(std::vector<sim::NodeId> ensemble);
  void Start();

  [[nodiscard]] sim::NodeId NetId() const { return net_id_; }
  [[nodiscard]] sim::Machine& Host() { return machine_; }
  [[nodiscard]] bool IsLeader() const;
  [[nodiscard]] std::size_t ZnodeCount() const { return znodes_.size(); }

  /// Test hook: inspect a znode's data on this replica.
  [[nodiscard]] std::optional<std::string> Peek(const std::string& path) const;

 private:
  struct Znode {
    std::string data;
    std::uint64_t owner_session = 0;  // 0 = persistent
  };
  struct PendingWrite {
    std::string path;
    std::string data;
    bool is_delete = false;
    std::uint64_t owner_session = 0;
    std::size_t acks = 0;
    // Reply routing (0 request_id = internal write, e.g. expiry cleanup).
    sim::NodeId requester = sim::kInvalidNode;
    std::uint64_t request_id = 0;
  };

  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg);
  void HandleClientRequest(sim::NodeId from, const ZkRequestMsg& m);
  void ProposeWrite(PendingWrite w);
  void ApplyWrite(const std::string& path, const std::string& data,
                  bool is_delete, std::uint64_t owner_session);
  void FireWatches(const std::string& path);
  void SweepSessions();
  [[nodiscard]] std::size_t LeaderSlot() const { return leader_slot_; }

  sim::Environment& env_;
  sim::Machine& machine_;
  const fabric::Calibration& cal_;
  ZkConfig config_;
  int index_;
  sim::NodeId net_id_ = sim::kInvalidNode;
  std::vector<sim::NodeId> ensemble_;
  std::size_t leader_slot_ = 0;

  // Replicated state (applied writes).
  std::map<std::string, Znode> znodes_;
  std::uint64_t next_zxid_ = 1;
  std::uint64_t last_applied_zxid_ = 0;
  std::map<std::uint64_t, PendingWrite> in_flight_;      // leader only
  std::map<std::uint64_t, PendingWrite> pending_commit_;  // follower side

  // Leader-only session and watch tracking.
  std::unordered_map<std::uint64_t, sim::SimTime> sessions_;
  std::unordered_map<std::string, std::vector<sim::NodeId>> watches_;
};

/// Convenience owner of a whole ensemble.
class ZooKeeperEnsemble {
 public:
  ZooKeeperEnsemble(sim::Environment& env, const fabric::Calibration& cal,
                    ZkConfig config, std::vector<sim::Machine*> machines);

  void Start();
  [[nodiscard]] std::size_t Size() const { return servers_.size(); }
  [[nodiscard]] ZooKeeperServer& Server(std::size_t i) { return *servers_[i]; }
  [[nodiscard]] std::vector<sim::NodeId> NetIds() const;

 private:
  std::vector<std::unique_ptr<ZooKeeperServer>> servers_;
};

}  // namespace fabricsim::ordering
