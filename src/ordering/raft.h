// Raft consensus (Ongaro & Ousterhout) — complete single-group
// implementation: randomized leader election, log replication with the
// AppendEntries consistency check, majority commit restricted to
// current-term entries, and follower catch-up via nextIndex backoff.
//
// The Raft ordering service replicates *blocks*: the elected leader runs the
// block cutter, and each cut block becomes one log entry (how Fabric's
// etcd/raft consenter works).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ordering/messages.h"
#include "sim/machine.h"

namespace fabricsim::ordering {

struct RaftConfig {
  sim::SimDuration election_timeout_min = sim::FromMillis(150);
  sim::SimDuration election_timeout_max = sim::FromMillis(300);
  sim::SimDuration heartbeat_interval = sim::FromMillis(50);
  std::size_t max_entries_per_append = 16;
};

/// One Raft participant. The owner registers a network endpoint, routes
/// incoming raft messages to OnMessage, and receives committed entries via
/// the apply callback (in log order, exactly once per run).
class RaftNode {
 public:
  /// apply(index, entry) is invoked for each newly committed entry.
  using ApplyFn = std::function<void(std::uint64_t index, const RaftEntry&)>;
  /// Called when this node's leadership status changes.
  using LeadershipFn = std::function<void(bool is_leader)>;

  RaftNode(sim::Scheduler& sched, sim::Network& net, sim::Rng rng,
           sim::NodeId self, std::vector<sim::NodeId> group,
           RaftConfig config, ApplyFn apply);

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Arms the first election timeout. Call once after all nodes exist.
  void Start();

  /// Routes a raft message (RequestVote/Reply, AppendEntries/Reply).
  /// Returns true if the message was a raft type and was consumed.
  bool OnMessage(sim::NodeId from, const sim::MessagePtr& msg);

  /// Leader-only: appends a block to the replicated log and starts
  /// replication. Returns false if this node is not the leader.
  bool Propose(proto::BlockPtr block, std::size_t block_bytes);

  [[nodiscard]] bool IsLeader() const { return role_ == Role::kLeader; }
  [[nodiscard]] std::optional<sim::NodeId> KnownLeader() const;
  [[nodiscard]] std::uint64_t Term() const { return current_term_; }
  [[nodiscard]] std::uint64_t CommitIndex() const { return commit_index_; }
  [[nodiscard]] std::uint64_t LogSize() const { return log_.size(); }

  /// Entry at 1-based `index`, or nullptr if out of range.
  [[nodiscard]] const RaftEntry* EntryAt(std::uint64_t index) const {
    if (index == 0 || index > log_.size()) return nullptr;
    return &log_[index - 1];
  }
  [[nodiscard]] sim::NodeId Id() const { return self_; }

  void SetLeadershipCallback(LeadershipFn fn) { on_leadership_ = std::move(fn); }

  /// Crash-recovery support for tests: forgets volatile state and restarts
  /// timers, keeping persistent state (term, vote, log) as Raft requires.
  void RestartAfterCrash();

 private:
  enum class Role { kFollower, kCandidate, kLeader };

  void BecomeFollower(std::uint64_t term);
  void StartElection();
  void BecomeLeader();
  void ResetElectionTimer();
  void CancelElectionTimer();
  void SendHeartbeats();
  void ReplicateTo(sim::NodeId peer);
  void MaybeAdvanceCommit();
  void ApplyCommitted();

  void HandleRequestVote(sim::NodeId from, const RequestVoteMsg& m);
  void HandleRequestVoteReply(sim::NodeId from, const RequestVoteReplyMsg& m);
  void HandleAppendEntries(sim::NodeId from, const AppendEntriesMsg& m);
  void HandleAppendEntriesReply(sim::NodeId from,
                                const AppendEntriesReplyMsg& m);

  [[nodiscard]] std::uint64_t LastLogIndex() const { return log_.size(); }
  [[nodiscard]] std::uint64_t LastLogTerm() const {
    return log_.empty() ? 0 : log_.back().term;
  }
  [[nodiscard]] std::size_t Majority() const { return group_.size() / 2 + 1; }

  sim::Scheduler& sched_;
  sim::Network& net_;
  sim::Rng rng_;
  sim::NodeId self_;
  std::vector<sim::NodeId> group_;  // includes self
  RaftConfig config_;
  ApplyFn apply_;
  LeadershipFn on_leadership_;

  // Persistent state.
  std::uint64_t current_term_ = 0;
  std::optional<sim::NodeId> voted_for_;
  std::vector<RaftEntry> log_;  // 1-based indexing: log_[i-1] is index i

  // Volatile state.
  Role role_ = Role::kFollower;
  std::optional<sim::NodeId> known_leader_;
  std::uint64_t commit_index_ = 0;
  std::uint64_t last_applied_ = 0;
  std::size_t votes_received_ = 0;

  // Leader state (index into group_ order).
  std::vector<std::uint64_t> next_index_;
  std::vector<std::uint64_t> match_index_;

  sim::EventId election_timer_ = 0;
  sim::EventId heartbeat_timer_ = 0;
  bool started_ = false;
};

}  // namespace fabricsim::ordering
