#include "ordering/block_cutter.h"

namespace fabricsim::ordering {

BlockCutter::OrderedResult BlockCutter::Ordered(EnvelopePtr env,
                                                std::size_t size_bytes) {
  OrderedResult out;

  // An oversized message is cut as its own batch (after flushing pending),
  // mirroring Fabric's handling of messages above PreferredMaxBytes.
  if (size_bytes > config_.preferred_max_bytes) {
    if (!pending_.empty()) out.batches.push_back(Cut());
    out.batches.push_back(Batch{std::move(env)});
    return out;
  }

  // Cut first if appending would overflow the preferred byte budget.
  if (pending_bytes_ + size_bytes > config_.preferred_max_bytes &&
      !pending_.empty()) {
    out.batches.push_back(Cut());
  }

  pending_.push_back(std::move(env));
  pending_bytes_ += size_bytes;

  if (pending_.size() >= config_.max_message_count) {
    out.batches.push_back(Cut());
  }
  out.pending = !pending_.empty();
  return out;
}

Batch BlockCutter::Cut() {
  Batch out = std::move(pending_);
  pending_.clear();
  pending_bytes_ = 0;
  return out;
}

}  // namespace fabricsim::ordering
