// Kafka-backed ordering service node (Fabric's Kafka consenter).
//
// Each OSN publishes envelopes to the channel's single Kafka partition and
// independently consumes the committed stream, running an identical block
// cutter — so all OSNs deterministically cut identical blocks. BatchTimeout
// is implemented with Fabric's time-to-cut (TTC) protocol: the first OSN
// whose local timer fires produces a TTC record carrying the next block
// number; every consumer cuts when it sees the first TTC for that number
// and ignores stragglers.
#pragma once

#include <deque>

#include "ordering/kafka_broker.h"
#include "ordering/osn_base.h"

namespace fabricsim::ordering {

class KafkaOrderer final : public OsnBase {
 public:
  KafkaOrderer(sim::Environment& env, sim::Machine& machine,
               crypto::Identity identity, const fabric::Calibration& cal,
               BatchConfig batch, metrics::TxTracker* tracker, int index,
               std::vector<sim::NodeId> zk_ids,
               std::string channel_id = "mychannel");

  /// Discovers the partition leader and starts consuming.
  void Start();

  [[nodiscard]] std::uint64_t ConsumedOffset() const { return next_offset_; }

 protected:
  AcceptResult AcceptEnvelope(const EnvelopePtr& env, std::size_t wire_size,
                              sim::NodeId origin) override;
  void OnOtherMessage(sim::NodeId from, const sim::MessagePtr& msg) override;

 private:
  void SendZk(ZkOp op, const std::string& path, const std::string& data,
              std::function<void(const ZkResponseMsg&)> on_reply);
  void DiscoverLeader();
  void SendFetch();
  void WatchdogTick();
  void ProduceRecord(KafkaRecord rec);
  void FlushOutbox();
  void ProcessRecord(const KafkaRecord& rec);
  void ArmTimerIfNeeded();
  void OnTimeout();
  void EmitBatch(Batch batch);

  BlockCutter cutter_;
  std::vector<sim::NodeId> zk_ids_;
  sim::NodeId partition_leader_ = sim::kInvalidNode;
  std::uint64_t next_offset_ = 0;
  bool fetch_in_flight_ = false;
  sim::SimTime last_broker_contact_ = 0;
  /// When the outstanding fetch was sent. Produce acks keep refreshing
  /// last_broker_contact_, so a lost fetch needs its own age check or it
  /// wedges the consume loop forever behind a live produce path.
  sim::SimTime fetch_sent_at_ = 0;
  sim::EventId timer_ = 0;

  // Records produced but not yet acked; re-sent on leader change.
  std::deque<KafkaRecord> outbox_;
  std::size_t unacked_ = 0;

  std::uint64_t next_zk_request_ = 1;
  std::map<std::uint64_t, std::function<void(const ZkResponseMsg&)>>
      zk_callbacks_;
};

}  // namespace fabricsim::ordering
