// Block assembly and delivery.
//
// BlockAssembler turns a cut batch into the next hash-chained, signed block
// and reports the CPU cost of doing so. DeliverService fans a block out to
// the peers subscribed to an OSN (Fabric's Deliver RPC).
#pragma once

#include <vector>

#include "crypto/identity.h"
#include "ordering/block_cutter.h"
#include "ordering/messages.h"
#include "sim/machine.h"

namespace fabricsim::ordering {

/// A block plus the bookkeeping the simulation needs alongside it.
struct AssembledBlock {
  proto::BlockPtr block;
  std::size_t wire_size = 0;
  sim::SimDuration cpu_cost = 0;
};

/// Creates consecutive blocks, maintaining the hash chain. Each consenter
/// instance that cuts blocks (Solo node, Raft leader, every Kafka OSN) owns
/// one assembler; deterministic cutting keeps replicas identical.
class BlockAssembler {
 public:
  BlockAssembler(const crypto::Identity& signer, double hash_us_per_kib,
                 sim::SimDuration base_cpu);

  /// Builds and signs block number `NextNumber()` from `batch`.
  AssembledBlock Assemble(const Batch& batch);

  [[nodiscard]] std::uint64_t NextNumber() const { return next_number_; }

  /// Re-anchors the assembler (a newly elected Raft leader continues the
  /// chain from its committed log rather than from local history).
  void SetNext(std::uint64_t number, const crypto::Digest& prev_hash) {
    next_number_ = number;
    prev_hash_ = prev_hash;
  }

 private:
  const crypto::Identity& signer_;
  double hash_us_per_kib_;
  sim::SimDuration base_cpu_;
  std::uint64_t next_number_ = 0;
  crypto::Digest prev_hash_{};
};

/// Per-OSN fan-out of blocks to subscribed peers.
class DeliverService {
 public:
  DeliverService(sim::Network& net, sim::NodeId self,
                 std::string channel_id = "mychannel")
      : net_(net), self_(self), channel_id_(std::move(channel_id)) {}

  /// Adds a subscriber; re-subscribing is idempotent (a peer that fails over
  /// to another OSN and back must not receive blocks twice).
  void Subscribe(sim::NodeId peer);

  [[nodiscard]] bool IsSubscribed(sim::NodeId peer) const;

  [[nodiscard]] const std::vector<sim::NodeId>& Subscribers() const {
    return subscribers_;
  }

  /// Sends the block to every subscriber.
  void Deliver(const AssembledBlock& b);

  /// Sends the block to one node (catch-up backfill after re-subscription).
  /// `ack_requested` asks the peer for a DeliverAckMsg so the OSN's backfill
  /// window can advance.
  void DeliverTo(sim::NodeId peer, const AssembledBlock& b,
                 bool ack_requested = false);

 private:
  sim::Network& net_;
  sim::NodeId self_;
  std::string channel_id_;
  std::vector<sim::NodeId> subscribers_;
};

}  // namespace fabricsim::ordering
