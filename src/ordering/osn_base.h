// Shared behaviour of ordering service nodes (OSNs).
//
// Every OSN — Solo, a Raft consenter, or a Kafka-backed OSN — accepts
// Broadcast envelopes from clients (charging the envelope-verification CPU
// cost and replying with an ack), delivers cut blocks to subscribed peers,
// and reports block cuts / ordered transactions to the tracker.
//
// With admission control enabled (SetAdmission) the broadcast ingress is a
// bounded queue: at most `max_inflight` envelopes live anywhere in the
// verify -> cutter -> assembly -> consensus pipeline at once (a slot frees
// when the transaction lands in a delivered block), at most `max_waiting`
// park behind them, and overflow is shed per the configured policy with a
// SERVICE_UNAVAILABLE-style nack carrying a retry-after hint.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/identity.h"
#include "fabric/calibration.h"
#include "metrics/phase_stats.h"
#include "metrics/rate_log.h"
#include "ordering/deliver.h"
#include "ordering/messages.h"
#include "sim/admission.h"
#include "sim/machine.h"

namespace fabricsim::ordering {

class OsnBase {
 public:
  /// One OSN instance serves one channel (Fabric OSN processes serve many
  /// channels; model that by placing several instances on one Machine).
  OsnBase(sim::Environment& env, sim::Machine& machine,
          crypto::Identity identity, const fabric::Calibration& cal,
          metrics::TxTracker* tracker, const std::string& net_name,
          std::string channel_id = "mychannel");

  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }

  virtual ~OsnBase() = default;
  OsnBase(const OsnBase&) = delete;
  OsnBase& operator=(const OsnBase&) = delete;

  [[nodiscard]] sim::NodeId NetId() const { return net_id_; }

  /// The machine hosting this node (its scheduler lane owns all the
  /// node's timers and deliveries under the PDES engine).
  [[nodiscard]] sim::Machine& Host() { return machine_; }
  [[nodiscard]] const crypto::Identity& GetIdentity() const {
    return identity_;
  }

  /// Subscribes a peer to this OSN's block deliveries.
  void SubscribePeer(sim::NodeId peer) { deliver_.Subscribe(peer); }

  /// Subscribes `peer` and backfills every already-delivered block from
  /// `from_number` on (Fabric's Deliver seek). Used by peers failing over
  /// from a crashed OSN; idempotent for existing subscribers. The backfill
  /// is windowed: at most `BackfillWindow()` blocks in flight per
  /// subscriber, advanced by DeliverAckMsg, so recovery traffic cannot
  /// monopolize the wire during failover.
  void SubscribePeerFrom(sim::NodeId peer, std::uint64_t from_number);

  /// Bounds the ingress queue. `retry_after` is the pause hint attached to
  /// overload nacks.
  void SetAdmission(const sim::AdmissionConfig& config,
                    sim::SimDuration retry_after);

  /// Blocks in flight per backfilling subscriber (default 4).
  void SetBackfillWindow(std::size_t window) { backfill_window_ = window; }
  [[nodiscard]] std::size_t BackfillWindow() const { return backfill_window_; }

  /// Caps the retained backfill history to the newest `blocks` delivered
  /// blocks (0 = keep all, the default). Memory is otherwise O(chain
  /// length); long soak runs bound it and forgo deep backfill seeks.
  void SetHistoryBlocks(std::size_t blocks) { history_blocks_ = blocks; }

  /// Envelopes currently admitted or waiting at the ingress queue.
  [[nodiscard]] std::size_t IngressDepth() const { return ingress_.Depth(); }
  [[nodiscard]] std::size_t IngressWaiting() const {
    return ingress_.Waiting();
  }
  /// Peak ingress depth ever observed (catches spikes between samples).
  [[nodiscard]] std::size_t IngressDepthHighWatermark() const {
    return ingress_.DepthHighWatermark();
  }
  [[nodiscard]] std::uint64_t IngressShed() const {
    return ingress_.ShedTotal();
  }
  [[nodiscard]] std::uint64_t IngressAdmitted() const {
    return ingress_.AdmittedTotal();
  }

  /// Anchors this OSN on the channel's genesis block: user blocks start at
  /// number 1 and chain off the genesis hash.
  void SetGenesis(const proto::Block& genesis);

  [[nodiscard]] std::uint64_t GenesisNextNumber() const {
    return genesis_next_number_;
  }
  [[nodiscard]] const crypto::Digest& GenesisHash() const {
    return genesis_hash_;
  }

  /// Blocks delivered so far by this OSN.
  [[nodiscard]] std::uint64_t DeliveredBlocks() const {
    return delivered_blocks_;
  }

  // --- Byzantine attack hooks (armed/disarmed by the FaultInjector) -------
  //
  // The attacks act on the *wire*: the OSN's internal history stays the
  // canonical chain (a deliberate simplification — attestation replies and
  // backfills after the window always serve the honest copy, which is what
  // lets the defense re-fetch a clean block after rejecting a corrupt one).

  /// Deliver a divergent, re-signed block variant to a subset of this OSN's
  /// subscribers. Structurally valid — only cross-OSN attestation or the
  /// next block's linkage check can catch it.
  void SetEquivocate(bool on) { byz_equivocate_ = on; }
  /// Corrupt a transaction payload in delivered blocks without recomputing
  /// the header's data hash — caught by the committer's data-hash check.
  void SetTamperDeliver(bool on) { byz_tamper_ = on; }
  /// Serve corrupted copies on backfill/catch-up subscriptions.
  void SetBogusBackfill(bool on) { byz_bogus_backfill_ = on; }
  [[nodiscard]] bool ByzantineActive() const {
    return byz_equivocate_ || byz_tamper_ || byz_bogus_backfill_;
  }

  /// Header hash of the block this OSN holds at `number`, for attestation
  /// and the fork invariant; nullopt outside the retained history.
  [[nodiscard]] std::optional<crypto::Digest> HistoryHeaderHash(
      std::uint64_t number) const;

  /// Per-second log of broadcasts received (the paper's rate double-check
  /// on the load actually reaching the ordering service).
  [[nodiscard]] const metrics::RateLog& BroadcastLog() const {
    return broadcast_log_;
  }

 protected:
  /// What the consenter did with a verified envelope.
  enum class AcceptResult {
    kOk,        // enqueued; ack the submitter, slot frees at block delivery
    kNack,      // hard-rejected; nack the submitter, slot frees now
    kDeferred,  // handed to another node which will ack; slot frees now
  };

  /// One envelope parked at (or admitted through) the ingress queue.
  struct PendingIngress {
    sim::NodeId from = sim::kInvalidNode;
    EnvelopePtr env;
    std::size_t wire_size = 0;
  };

  /// Consensus-specific envelope path, invoked after the shared verification
  /// CPU charge. `origin` is the node to be acked (the submitting client,
  /// or with admission on, the client a follower forwarded for).
  virtual AcceptResult AcceptEnvelope(const EnvelopePtr& env,
                                      std::size_t wire_size,
                                      sim::NodeId origin) = 0;

  /// Consensus-specific extra message handling (raft/kafka traffic).
  virtual void OnOtherMessage(sim::NodeId from, const sim::MessagePtr& msg) = 0;

  /// Marks all txs of `b` ordered, records the cut, and delivers to peers.
  /// Out-of-order completions (parallel CPU) are buffered and flushed in
  /// block-number order so subscribers always see a contiguous chain.
  void FinishBlock(AssembledBlock b);

  /// Builds + signs the next block from `batch` on this node's CPU, then
  /// calls `done` with the result.
  void AssembleAsync(Batch batch,
                     std::function<void(AssembledBlock)> done);

  /// Runs `item` through the bounded ingress: admitted items get the verify
  /// CPU charge then AcceptEnvelope; shed items get an overload nack (or
  /// vanish under the block policy, modelling transport backpressure).
  /// Entry point for both client broadcasts and leader-side handling of
  /// forwarded envelopes.
  void AdmitForVerify(PendingIngress item);

  [[nodiscard]] bool AdmissionEnabled() const {
    return ingress_.Config().enabled;
  }
  [[nodiscard]] sim::SimDuration AdmissionRetryAfter() const {
    return retry_after_;
  }

  /// Sends a SERVICE_UNAVAILABLE-style nack with the retry-after hint.
  void NackOverloaded(sim::NodeId to, const std::string& tx_id);

  /// Releases the ingress slot held for an admitted tx that will never
  /// reach a delivered block on this node (e.g. dropped on leadership
  /// loss). No-op for txs this node did not admit.
  void ReleaseAdmittedTx(const std::string& tx_id);

  /// Clears all admission state (crash restart).
  void ResetAdmission();

  sim::Environment& env_;
  sim::Machine& machine_;
  crypto::Identity identity_;
  const fabric::Calibration& cal_;
  metrics::TxTracker* tracker_;
  std::string channel_id_;
  sim::NodeId net_id_ = sim::kInvalidNode;
  BlockAssembler assembler_;
  DeliverService deliver_;
  std::uint64_t delivered_blocks_ = 0;

 private:
  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg);
  /// Charges the verify CPU cost for an admitted envelope, then dispatches
  /// to AcceptEnvelope and acks/releases per the result.
  void StartVerify(PendingIngress item);
  /// Frees one ingress slot; pulls and starts the next waiting envelope.
  void ReleaseIngressSlot();
  void ShedIngress(std::vector<PendingIngress> shed);

  struct BackfillState {
    std::uint64_t next = 0;      // next block number to send
    std::size_t inflight = 0;    // sent but not yet acked
    std::uint64_t version = 0;   // bumped on every change, guards the timer
  };
  void PumpBackfill(sim::NodeId peer);
  void OnDeliverAck(sim::NodeId peer);

  /// Deliver path when an equivocate/tamper attack window is active.
  void DeliverByzantine(const AssembledBlock& ready);
  /// Copy with one tx payload corrupted and the (now stale) header kept.
  [[nodiscard]] AssembledBlock TamperedCopy(const AssembledBlock& b) const;
  /// Divergent variant rebuilt and re-signed by this OSN's identity.
  [[nodiscard]] AssembledBlock ForgedVariant(const AssembledBlock& b) const;

  std::uint64_t next_deliver_number_ = 0;
  std::map<std::uint64_t, AssembledBlock> out_of_order_;
  // Every block delivered so far, by number, so late (re)subscribers can be
  // backfilled. Blocks are shared_ptrs into the same objects the peers hold,
  // so retention costs pointers, not copies.
  std::map<std::uint64_t, AssembledBlock> history_;
  metrics::RateLog broadcast_log_{"broadcast-received"};
  std::uint64_t genesis_next_number_ = 0;
  crypto::Digest genesis_hash_{};

  sim::AdmissionQueue<PendingIngress> ingress_;
  sim::SimDuration retry_after_ = 0;
  // Occurrence counts of admitted tx ids still in the pipeline (counts, not
  // a set: a client may legitimately resubmit the same tx id and both
  // copies hold slots until each lands in a block).
  std::unordered_map<std::string, int> admitted_txs_;

  std::map<sim::NodeId, BackfillState> backfill_;
  std::size_t history_blocks_ = 0;  // 0 = unbounded
  std::size_t backfill_window_ = 4;
  sim::SimDuration backfill_timeout_ = sim::FromSeconds(2);

  bool byz_equivocate_ = false;
  bool byz_tamper_ = false;
  bool byz_bogus_backfill_ = false;
};

}  // namespace fabricsim::ordering
