// Shared behaviour of ordering service nodes (OSNs).
//
// Every OSN — Solo, a Raft consenter, or a Kafka-backed OSN — accepts
// Broadcast envelopes from clients (charging the envelope-verification CPU
// cost and replying with an ack), delivers cut blocks to subscribed peers,
// and reports block cuts / ordered transactions to the tracker.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "crypto/identity.h"
#include "fabric/calibration.h"
#include "metrics/phase_stats.h"
#include "metrics/rate_log.h"
#include "ordering/deliver.h"
#include "ordering/messages.h"
#include "sim/machine.h"

namespace fabricsim::ordering {

class OsnBase {
 public:
  /// One OSN instance serves one channel (Fabric OSN processes serve many
  /// channels; model that by placing several instances on one Machine).
  OsnBase(sim::Environment& env, sim::Machine& machine,
          crypto::Identity identity, const fabric::Calibration& cal,
          metrics::TxTracker* tracker, const std::string& net_name,
          std::string channel_id = "mychannel");

  [[nodiscard]] const std::string& ChannelId() const { return channel_id_; }

  virtual ~OsnBase() = default;
  OsnBase(const OsnBase&) = delete;
  OsnBase& operator=(const OsnBase&) = delete;

  [[nodiscard]] sim::NodeId NetId() const { return net_id_; }
  [[nodiscard]] const crypto::Identity& GetIdentity() const {
    return identity_;
  }

  /// Subscribes a peer to this OSN's block deliveries.
  void SubscribePeer(sim::NodeId peer) { deliver_.Subscribe(peer); }

  /// Subscribes `peer` and backfills every already-delivered block from
  /// `from_number` on (Fabric's Deliver seek). Used by peers failing over
  /// from a crashed OSN; idempotent for existing subscribers.
  void SubscribePeerFrom(sim::NodeId peer, std::uint64_t from_number);

  /// Anchors this OSN on the channel's genesis block: user blocks start at
  /// number 1 and chain off the genesis hash.
  void SetGenesis(const proto::Block& genesis);

  [[nodiscard]] std::uint64_t GenesisNextNumber() const {
    return genesis_next_number_;
  }
  [[nodiscard]] const crypto::Digest& GenesisHash() const {
    return genesis_hash_;
  }

  /// Blocks delivered so far by this OSN.
  [[nodiscard]] std::uint64_t DeliveredBlocks() const {
    return delivered_blocks_;
  }

  /// Per-second log of broadcasts received (the paper's rate double-check
  /// on the load actually reaching the ordering service).
  [[nodiscard]] const metrics::RateLog& BroadcastLog() const {
    return broadcast_log_;
  }

 protected:
  /// Consensus-specific envelope path, invoked after the shared verification
  /// CPU charge. Implementations enqueue into their consenter and return
  /// true to ack success.
  virtual bool AcceptEnvelope(const EnvelopePtr& env, std::size_t wire_size) = 0;

  /// Consensus-specific extra message handling (raft/kafka traffic).
  virtual void OnOtherMessage(sim::NodeId from, const sim::MessagePtr& msg) = 0;

  /// Marks all txs of `b` ordered, records the cut, and delivers to peers.
  /// Out-of-order completions (parallel CPU) are buffered and flushed in
  /// block-number order so subscribers always see a contiguous chain.
  void FinishBlock(AssembledBlock b);

  /// Builds + signs the next block from `batch` on this node's CPU, then
  /// calls `done` with the result.
  void AssembleAsync(Batch batch,
                     std::function<void(AssembledBlock)> done);

  sim::Environment& env_;
  sim::Machine& machine_;
  crypto::Identity identity_;
  const fabric::Calibration& cal_;
  metrics::TxTracker* tracker_;
  std::string channel_id_;
  sim::NodeId net_id_ = sim::kInvalidNode;
  BlockAssembler assembler_;
  DeliverService deliver_;
  std::uint64_t delivered_blocks_ = 0;

 private:
  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg);

  std::uint64_t next_deliver_number_ = 0;
  std::map<std::uint64_t, AssembledBlock> out_of_order_;
  // Every block delivered so far, by number, so late (re)subscribers can be
  // backfilled. Blocks are shared_ptrs into the same objects the peers hold,
  // so retention costs pointers, not copies.
  std::map<std::uint64_t, AssembledBlock> history_;
  metrics::RateLog broadcast_log_{"broadcast-received"};
  std::uint64_t genesis_next_number_ = 0;
  crypto::Digest genesis_hash_{};
};

}  // namespace fabricsim::ordering
