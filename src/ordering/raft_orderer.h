// Raft-backed ordering service node (Fabric's etcd/raft consenter).
//
// Every OSN embeds a RaftNode. The elected leader runs the block cutter:
// incoming envelopes (from its own clients, or forwarded by follower OSNs)
// are batched, each cut batch is assembled into a block and proposed into
// the Raft log, and every OSN delivers blocks to its subscribed peers when
// its Raft instance commits them — so followers serve Deliver too, exactly
// like Fabric.
#pragma once

#include <memory>

#include "ordering/osn_base.h"
#include "ordering/raft.h"

namespace fabricsim::ordering {

class RaftOrderer final : public OsnBase {
 public:
  RaftOrderer(sim::Environment& env, sim::Machine& machine,
              crypto::Identity identity, const fabric::Calibration& cal,
              BatchConfig batch, RaftConfig raft_config,
              metrics::TxTracker* tracker, int index,
              std::string channel_id = "mychannel");

  /// Wires the consenter group. Call once for each node, then StartAll.
  void SetGroup(const std::vector<sim::NodeId>& group);

  /// Arms raft timers. All nodes must have their group set first.
  void Start();

  [[nodiscard]] bool IsLeader() const { return raft_->IsLeader(); }
  [[nodiscard]] const RaftNode& Raft() const { return *raft_; }

  /// Crash-recovery: resets the consenter's volatile Raft state and re-arms
  /// its timers, as a real orderer restart would. Call when the simulated
  /// process comes back after sim::Network::Revive.
  void RestartAfterCrash();

 protected:
  AcceptResult AcceptEnvelope(const EnvelopePtr& env, std::size_t wire_size,
                              sim::NodeId origin) override;
  void OnOtherMessage(sim::NodeId from, const sim::MessagePtr& msg) override;

 private:
  void LeaderEnqueue(const EnvelopePtr& env, std::size_t wire_size);
  void ArmTimerIfNeeded();
  void OnTimeout();
  void ProposeBatch(Batch batch);
  void OnCommitted(std::uint64_t index, const RaftEntry& entry);
  void OnLeadershipChange(bool is_leader);

  RaftConfig raft_config_;
  std::unique_ptr<RaftNode> raft_;
  BlockCutter cutter_;
  sim::EventId timer_ = 0;
  std::uint64_t last_delivered_raft_index_ = 0;
};

}  // namespace fabricsim::ordering
