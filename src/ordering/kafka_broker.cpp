#include "ordering/kafka_broker.h"

#include <algorithm>

namespace fabricsim::ordering {

KafkaBroker::KafkaBroker(sim::Environment& env, sim::Machine& machine,
                         const fabric::Calibration& cal, KafkaConfig config,
                         int index, std::vector<sim::NodeId> zk_ids,
                         std::string topic)
    : env_(env),
      machine_(machine),
      cal_(cal),
      config_(config),
      index_(index),
      topic_(std::move(topic)),
      zk_ids_(std::move(zk_ids)) {
  net_id_ = env_.Net().Register(
      "kafka-broker" + std::to_string(index) + "/" + topic_,
      [this](sim::NodeId from, sim::MessagePtr msg) {
        OnMessage(from, std::move(msg));
      });
}

void KafkaBroker::SetPeers(std::vector<sim::NodeId> brokers) {
  brokers_ = std::move(brokers);
}

void KafkaBroker::Start() {
  HeartbeatTick();
  TryBecomeController();
}

void KafkaBroker::SendZk(ZkOp op, const std::string& path,
                         const std::string& data,
                         std::function<void(const ZkResponseMsg&)> on_reply) {
  auto req = std::make_shared<ZkRequestMsg>();
  req->op = op;
  req->path = path;
  req->data = data;
  req->session_id = static_cast<std::uint64_t>(net_id_) + 1;
  req->request_id = next_zk_request_++;
  if (on_reply) zk_callbacks_[req->request_id] = std::move(on_reply);
  // Clients talk to the ensemble leader (first server).
  env_.Net().Send(net_id_, zk_ids_.front(), req);
}

void KafkaBroker::HeartbeatTick() {
  SendZk(ZkOp::kHeartbeat, "", "", nullptr);
  env_.Sched().ScheduleAfter(config_.zk_heartbeat, [this] { HeartbeatTick(); },
                             "kafka_broker/zk_heartbeat");
}

void KafkaBroker::TryBecomeController() {
  if (is_leader_ || controller_race_in_flight_) return;
  controller_race_in_flight_ = true;
  SendZk(ZkOp::kCreateEphemeral, "/controller/" + topic_,
         std::to_string(net_id_),
         [this](const ZkResponseMsg& resp) {
           controller_race_in_flight_ = false;
           if (resp.ok) {
             OnBecameLeader();
           }
           // If not ok, the ZK server registered a deletion watch for us;
           // we re-race when the watch event arrives.
         });
}

void KafkaBroker::OnBecameLeader() {
  is_leader_ = true;
  follower_log_end_.clear();
  follower_last_ack_.clear();
  catchup_log_end_.clear();
  for (sim::NodeId f : IsrFollowers()) {
    follower_log_end_[f] = 0;
    follower_last_ack_[f] = env_.Now();
  }
  // Sync followers from the beginning of what they miss; followers tell us
  // their progress via acks, so start by (re)sending everything committed
  // and beyond.
  ReplicateToFollowers();
  IsrMaintenanceTick();
}

void KafkaBroker::IsrMaintenanceTick() {
  if (!is_leader_) return;
  // Shrink the ISR: drop followers that are behind and have been silent
  // past the lag limit (a crashed broker must not hold back the high
  // watermark forever — Kafka's replica.lag.time.max.ms behaviour).
  bool shrunk = false;
  bool retry = false;
  for (auto it = follower_log_end_.begin(); it != follower_log_end_.end();) {
    const bool behind = it->second < log_.size();
    const sim::SimDuration silence =
        env_.Now() - follower_last_ack_[it->first];
    if (behind && silence > config_.isr_lag_limit) {
      // Keep replicating to the dropped follower so it can catch up and
      // re-enter the ISR once it revives.
      catchup_log_end_[it->first] = it->second;
      follower_last_ack_.erase(it->first);
      replication_in_flight_.erase(it->first);
      it = follower_log_end_.erase(it);
      shrunk = true;
      continue;
    }
    if (behind && silence > sim::FromSeconds(2)) {
      // The in-flight batch (or its ack) was probably lost: resend.
      replication_in_flight_[it->first] = false;
      retry = true;
    }
    ++it;
  }
  // Catch-up followers get their batch re-offered every tick: sends to a
  // still-crashed broker vanish, and duplicates are harmless (followers
  // append only the record at their log end).
  for (auto& [follower, acked] : catchup_log_end_) {
    if (acked < log_.size()) {
      replication_in_flight_[follower] = false;
      retry = true;
    }
  }
  if (shrunk) MaybeAdvanceHighWatermark();
  if (retry) ReplicateToFollowers();
  env_.Sched().ScheduleAfter(sim::FromSeconds(2),
                             [this] { IsrMaintenanceTick(); },
                             "kafka_broker/isr_tick");
}

std::vector<sim::NodeId> KafkaBroker::IsrFollowers() const {
  // ISR = the replication_factor brokers starting at this broker's slot,
  // wrapping around the cluster, excluding self.
  std::vector<sim::NodeId> out;
  if (brokers_.empty()) return out;
  const auto self_slot = static_cast<std::size_t>(
      std::find(brokers_.begin(), brokers_.end(), net_id_) - brokers_.begin());
  const int rf = std::min<int>(config_.replication_factor,
                               static_cast<int>(brokers_.size()));
  for (int i = 1; i < rf; ++i) {
    out.push_back(brokers_[(self_slot + static_cast<std::size_t>(i)) %
                           brokers_.size()]);
  }
  return out;
}

void KafkaBroker::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (auto resp = std::dynamic_pointer_cast<const ZkResponseMsg>(msg)) {
    auto it = zk_callbacks_.find(resp->request_id);
    if (it != zk_callbacks_.end()) {
      auto cb = std::move(it->second);
      zk_callbacks_.erase(it);
      cb(*resp);
    }
    return;
  }
  if (std::dynamic_pointer_cast<const ZkWatchEventMsg>(msg)) {
    // The controller znode vanished: race to take over.
    TryBecomeController();
    return;
  }
  if (auto produce = std::dynamic_pointer_cast<const KafkaProduceMsg>(msg)) {
    machine_.GetCpu().Submit(cal_.broker_append_cpu, [this, from, produce] {
      HandleProduce(from, *produce);
    });
    return;
  }
  if (auto fetch = std::dynamic_pointer_cast<const KafkaFetchMsg>(msg)) {
    HandleFetch(from, *fetch);
    return;
  }
  if (auto rep = std::dynamic_pointer_cast<const KafkaReplicateMsg>(msg)) {
    // Follower: append records we don't have yet, in offset order.
    machine_.GetCpu().Submit(cal_.broker_append_cpu, [this, from, rep] {
      for (const auto& rec : rep->records) {
        if (rec.offset == log_.size()) {
          log_.push_back(rec);
        }
      }
      if (rep->high_watermark > high_watermark_) {
        high_watermark_ =
            std::min<std::uint64_t>(rep->high_watermark, log_.size());
      }
      auto ack = std::make_shared<KafkaReplicateAckMsg>();
      ack->log_end = log_.size();
      env_.Net().Send(net_id_, from, ack);
    });
    return;
  }
  if (auto ack = std::dynamic_pointer_cast<const KafkaReplicateAckMsg>(msg)) {
    if (!is_leader_) return;
    auto it = follower_log_end_.find(from);
    if (it == follower_log_end_.end()) {
      // An out-of-ISR follower catching back up.
      auto cit = catchup_log_end_.find(from);
      if (cit == catchup_log_end_.end()) return;
      replication_in_flight_[from] = false;
      if (ack->log_end > cit->second) cit->second = ack->log_end;
      if (cit->second >= log_.size()) {
        // Fully caught up: re-expand the ISR.
        follower_log_end_[from] = cit->second;
        follower_last_ack_[from] = env_.Now();
        catchup_log_end_.erase(cit);
      } else {
        ReplicateToFollowers();
      }
      return;
    }
    follower_last_ack_[from] = env_.Now();
    replication_in_flight_[from] = false;
    if (ack->log_end > it->second) it->second = ack->log_end;
    MaybeAdvanceHighWatermark();
    // Keep streaming if the follower is behind.
    if (it->second < log_.size()) ReplicateToFollowers();
    return;
  }
}

void KafkaBroker::HandleProduce(sim::NodeId from, const KafkaProduceMsg& m) {
  if (!is_leader_) {
    // Not the partition leader: nack with offset 0 so the producer can
    // rediscover the leader via ZooKeeper and retry.
    auto nack = std::make_shared<KafkaProduceAckMsg>();
    nack->ok = false;
    env_.Net().Send(net_id_, from, nack);
    return;
  }
  KafkaRecord rec = m.record;
  rec.offset = log_.size();
  log_.push_back(std::move(rec));
  pending_produce_acks_.emplace(log_.size() - 1, from);
  if (IsrFollowers().empty()) {
    MaybeAdvanceHighWatermark();
  } else {
    ReplicateToFollowers();
  }
}

void KafkaBroker::ReplicateToFollowers() {
  auto stream_to = [this](sim::NodeId follower, std::uint64_t acked) {
    if (acked >= log_.size()) return;
    if (replication_in_flight_[follower]) return;  // pipelined: one batch
    replication_in_flight_[follower] = true;
    auto rep = std::make_shared<KafkaReplicateMsg>();
    rep->high_watermark = high_watermark_;
    const std::uint64_t end =
        std::min<std::uint64_t>(log_.size(), acked + config_.max_fetch_records);
    for (std::uint64_t i = acked; i < end; ++i) {
      rep->records.push_back(log_[i]);
    }
    env_.Net().Send(net_id_, follower, rep);
  };
  for (auto& [follower, acked] : follower_log_end_) stream_to(follower, acked);
  for (auto& [follower, acked] : catchup_log_end_) stream_to(follower, acked);
}

void KafkaBroker::MaybeAdvanceHighWatermark() {
  // Committed = replicated to ALL in-sync replicas (paper §III).
  std::uint64_t hw = log_.size();
  for (const auto& [follower, acked] : follower_log_end_) {
    (void)follower;
    hw = std::min(hw, acked);
  }
  if (hw <= high_watermark_) return;
  high_watermark_ = hw;

  // Ack producers whose records just committed.
  for (auto it = pending_produce_acks_.begin();
       it != pending_produce_acks_.end() && it->first < high_watermark_;) {
    auto ack = std::make_shared<KafkaProduceAckMsg>();
    ack->offset = it->first;
    ack->ok = true;
    env_.Net().Send(net_id_, it->second, ack);
    it = pending_produce_acks_.erase(it);
  }
  AnswerPendingFetches();
}

void KafkaBroker::HandleFetch(sim::NodeId from, const KafkaFetchMsg& m) {
  pending_fetches_[from] = m.offset;
  AnswerPendingFetches();
}

void KafkaBroker::AnswerPendingFetches() {
  for (auto it = pending_fetches_.begin(); it != pending_fetches_.end();) {
    const sim::NodeId consumer = it->first;
    const std::uint64_t offset = it->second;
    if (offset >= high_watermark_) {
      ++it;  // long-poll: keep parked until data commits
      continue;
    }
    auto resp = std::make_shared<KafkaFetchResponseMsg>();
    const std::uint64_t end = std::min<std::uint64_t>(
        high_watermark_, offset + config_.max_fetch_records);
    for (std::uint64_t i = offset; i < end; ++i) {
      resp->records.push_back(log_[i]);
    }
    resp->next_offset = end;
    env_.Net().Send(net_id_, consumer, resp);
    it = pending_fetches_.erase(it);
  }
}

}  // namespace fabricsim::ordering
