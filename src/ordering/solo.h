// Solo ordering service: a single OSN that cuts blocks locally.
//
// Fabric's development/test consenter — no fault tolerance (the paper's
// §III). Cuts on BatchSize immediately and arms a local BatchTimeout timer
// when the first message of a batch arrives.
#pragma once

#include "ordering/osn_base.h"

namespace fabricsim::ordering {

class SoloOrderer final : public OsnBase {
 public:
  SoloOrderer(sim::Environment& env, sim::Machine& machine,
              crypto::Identity identity, const fabric::Calibration& cal,
              BatchConfig batch, metrics::TxTracker* tracker,
              std::string channel_id = "mychannel");

  [[nodiscard]] std::uint64_t BlocksCut() const {
    return DeliveredBlocks();
  }

 protected:
  AcceptResult AcceptEnvelope(const EnvelopePtr& env, std::size_t wire_size,
                              sim::NodeId origin) override;
  void OnOtherMessage(sim::NodeId from, const sim::MessagePtr& msg) override;

 private:
  void ArmTimerIfNeeded();
  void OnTimeout();
  void EmitBatch(Batch batch);

  BlockCutter cutter_;
  sim::EventId timer_ = 0;
};

}  // namespace fabricsim::ordering
