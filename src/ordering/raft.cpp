#include "ordering/raft.h"

#include <algorithm>
#include <cassert>

namespace fabricsim::ordering {

RaftNode::RaftNode(sim::Scheduler& sched, sim::Network& net, sim::Rng rng,
                   sim::NodeId self, std::vector<sim::NodeId> group,
                   RaftConfig config, ApplyFn apply)
    : sched_(sched),
      net_(net),
      rng_(rng),
      self_(self),
      group_(std::move(group)),
      config_(config),
      apply_(std::move(apply)) {
  next_index_.assign(group_.size(), 1);
  match_index_.assign(group_.size(), 0);
}

void RaftNode::Start() {
  started_ = true;
  ResetElectionTimer();
}

void RaftNode::RestartAfterCrash() {
  // Volatile state resets; persistent (term, vote, log) survives. The commit
  // index is volatile in Raft and is re-learned from the leader.
  role_ = Role::kFollower;
  known_leader_.reset();
  commit_index_ = 0;
  last_applied_ = 0;
  votes_received_ = 0;
  CancelElectionTimer();
  sched_.Cancel(heartbeat_timer_);
  heartbeat_timer_ = 0;
  ResetElectionTimer();
}

std::optional<sim::NodeId> RaftNode::KnownLeader() const {
  if (role_ == Role::kLeader) return self_;
  return known_leader_;
}

void RaftNode::ResetElectionTimer() {
  CancelElectionTimer();
  const auto span = config_.election_timeout_max - config_.election_timeout_min;
  const auto delay =
      config_.election_timeout_min +
      static_cast<sim::SimDuration>(rng_.NextDouble() *
                                    static_cast<double>(span));
  election_timer_ = sched_.ScheduleAfter(delay, [this] { StartElection(); },
                                         "raft/election_timer");
}

void RaftNode::CancelElectionTimer() {
  if (election_timer_ != 0) {
    sched_.Cancel(election_timer_);
    election_timer_ = 0;
  }
}

void RaftNode::BecomeFollower(std::uint64_t term) {
  const bool was_leader = (role_ == Role::kLeader);
  if (term > current_term_) {
    current_term_ = term;
    voted_for_.reset();
  }
  role_ = Role::kFollower;
  votes_received_ = 0;
  if (heartbeat_timer_ != 0) {
    sched_.Cancel(heartbeat_timer_);
    heartbeat_timer_ = 0;
  }
  ResetElectionTimer();
  if (was_leader && on_leadership_) on_leadership_(false);
}

void RaftNode::StartElection() {
  if (role_ == Role::kLeader) return;
  role_ = Role::kCandidate;
  ++current_term_;
  voted_for_ = self_;
  votes_received_ = 1;  // own vote
  known_leader_.reset();
  ResetElectionTimer();

  // Single-node group: win immediately.
  if (votes_received_ >= Majority()) {
    BecomeLeader();
    return;
  }

  for (sim::NodeId peer : group_) {
    if (peer == self_) continue;
    auto msg = std::make_shared<RequestVoteMsg>();
    msg->term = current_term_;
    msg->candidate = self_;
    msg->last_log_index = LastLogIndex();
    msg->last_log_term = LastLogTerm();
    net_.Send(self_, peer, msg);
  }
}

void RaftNode::BecomeLeader() {
  role_ = Role::kLeader;
  known_leader_ = self_;
  CancelElectionTimer();
  for (std::size_t i = 0; i < group_.size(); ++i) {
    next_index_[i] = LastLogIndex() + 1;
    match_index_[i] = (group_[i] == self_) ? LastLogIndex() : 0;
  }
  if (on_leadership_) on_leadership_(true);
  SendHeartbeats();
}

void RaftNode::SendHeartbeats() {
  if (role_ != Role::kLeader) return;
  for (sim::NodeId peer : group_) {
    if (peer == self_) continue;
    ReplicateTo(peer);
  }
  heartbeat_timer_ = sched_.ScheduleAfter(config_.heartbeat_interval,
                                          [this] { SendHeartbeats(); },
                                          "raft/heartbeat");
}

void RaftNode::ReplicateTo(sim::NodeId peer) {
  const auto slot = static_cast<std::size_t>(
      std::find(group_.begin(), group_.end(), peer) - group_.begin());
  assert(slot < group_.size());
  const std::uint64_t next = next_index_[slot];

  auto msg = std::make_shared<AppendEntriesMsg>();
  msg->term = current_term_;
  msg->leader = self_;
  msg->prev_log_index = next - 1;
  msg->prev_log_term =
      (next >= 2 && next - 2 < log_.size()) ? log_[next - 2].term : 0;
  msg->leader_commit = commit_index_;
  for (std::uint64_t i = next;
       i <= LastLogIndex() &&
       msg->entries.size() < config_.max_entries_per_append;
       ++i) {
    msg->entries.push_back(log_[i - 1]);
  }
  net_.Send(self_, peer, msg);
}

bool RaftNode::Propose(proto::BlockPtr block, std::size_t block_bytes) {
  if (role_ != Role::kLeader) return false;
  log_.push_back(RaftEntry{current_term_, std::move(block), block_bytes});
  const auto self_slot = static_cast<std::size_t>(
      std::find(group_.begin(), group_.end(), self_) - group_.begin());
  match_index_[self_slot] = LastLogIndex();
  next_index_[self_slot] = LastLogIndex() + 1;
  // Replicate eagerly instead of waiting for the heartbeat tick.
  for (sim::NodeId peer : group_) {
    if (peer != self_) ReplicateTo(peer);
  }
  MaybeAdvanceCommit();  // single-node groups commit immediately
  return true;
}

void RaftNode::MaybeAdvanceCommit() {
  if (role_ != Role::kLeader) return;
  for (std::uint64_t n = LastLogIndex(); n > commit_index_; --n) {
    // Raft safety: only entries of the current term commit by counting.
    if (log_[n - 1].term != current_term_) break;
    std::size_t count = 0;
    for (std::size_t i = 0; i < group_.size(); ++i) {
      if (match_index_[i] >= n) ++count;
    }
    if (count >= Majority()) {
      commit_index_ = n;
      break;
    }
  }
  ApplyCommitted();
}

void RaftNode::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    if (apply_) apply_(last_applied_, log_[last_applied_ - 1]);
  }
}

bool RaftNode::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (!started_) return false;
  if (auto rv = std::dynamic_pointer_cast<const RequestVoteMsg>(msg)) {
    HandleRequestVote(from, *rv);
    return true;
  }
  if (auto rvr = std::dynamic_pointer_cast<const RequestVoteReplyMsg>(msg)) {
    HandleRequestVoteReply(from, *rvr);
    return true;
  }
  if (auto ae = std::dynamic_pointer_cast<const AppendEntriesMsg>(msg)) {
    HandleAppendEntries(from, *ae);
    return true;
  }
  if (auto aer = std::dynamic_pointer_cast<const AppendEntriesReplyMsg>(msg)) {
    HandleAppendEntriesReply(from, *aer);
    return true;
  }
  return false;
}

void RaftNode::HandleRequestVote(sim::NodeId from, const RequestVoteMsg& m) {
  if (m.term > current_term_) BecomeFollower(m.term);

  auto reply = std::make_shared<RequestVoteReplyMsg>();
  reply->term = current_term_;
  reply->granted = false;

  if (m.term == current_term_ &&
      (!voted_for_ || *voted_for_ == m.candidate)) {
    // Election restriction: candidate's log must be at least as up-to-date.
    const bool up_to_date =
        m.last_log_term > LastLogTerm() ||
        (m.last_log_term == LastLogTerm() &&
         m.last_log_index >= LastLogIndex());
    if (up_to_date) {
      voted_for_ = m.candidate;
      reply->granted = true;
      ResetElectionTimer();
    }
  }
  net_.Send(self_, from, reply);
}

void RaftNode::HandleRequestVoteReply(sim::NodeId /*from*/,
                                      const RequestVoteReplyMsg& m) {
  if (m.term > current_term_) {
    BecomeFollower(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != current_term_ || !m.granted) {
    return;
  }
  ++votes_received_;
  if (votes_received_ >= Majority()) BecomeLeader();
}

void RaftNode::HandleAppendEntries(sim::NodeId from,
                                   const AppendEntriesMsg& m) {
  auto reply = std::make_shared<AppendEntriesReplyMsg>();

  if (m.term > current_term_) BecomeFollower(m.term);
  reply->term = current_term_;

  if (m.term < current_term_) {
    reply->success = false;
    reply->hint_index = LastLogIndex();
    net_.Send(self_, from, reply);
    return;
  }

  // Valid leader for this term.
  if (role_ != Role::kFollower) BecomeFollower(m.term);
  known_leader_ = m.leader;
  ResetElectionTimer();

  // Consistency check.
  if (m.prev_log_index > 0) {
    if (m.prev_log_index > LastLogIndex() ||
        log_[m.prev_log_index - 1].term != m.prev_log_term) {
      reply->success = false;
      reply->hint_index = std::min<std::uint64_t>(
          LastLogIndex(), m.prev_log_index > 0 ? m.prev_log_index - 1 : 0);
      net_.Send(self_, from, reply);
      return;
    }
  }

  // Append / overwrite conflicting suffix.
  std::uint64_t index = m.prev_log_index;
  for (const auto& entry : m.entries) {
    ++index;
    if (index <= LastLogIndex()) {
      if (log_[index - 1].term != entry.term) {
        log_.resize(index - 1);  // drop conflicting suffix
        log_.push_back(entry);
      }
    } else {
      log_.push_back(entry);
    }
  }

  if (m.leader_commit > commit_index_) {
    commit_index_ = std::min<std::uint64_t>(m.leader_commit, LastLogIndex());
    ApplyCommitted();
  }

  reply->success = true;
  reply->match_index = index;
  net_.Send(self_, from, reply);
}

void RaftNode::HandleAppendEntriesReply(sim::NodeId from,
                                        const AppendEntriesReplyMsg& m) {
  if (m.term > current_term_) {
    BecomeFollower(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != current_term_) return;

  const auto slot = static_cast<std::size_t>(
      std::find(group_.begin(), group_.end(), from) - group_.begin());
  if (slot >= group_.size()) return;

  if (m.success) {
    if (m.match_index > match_index_[slot]) {
      match_index_[slot] = m.match_index;
    }
    next_index_[slot] = match_index_[slot] + 1;
    MaybeAdvanceCommit();
    // Keep streaming if the follower is still behind.
    if (next_index_[slot] <= LastLogIndex()) ReplicateTo(from);
  } else {
    // Back off using the follower's hint and retry immediately.
    next_index_[slot] =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                       next_index_[slot] - 1, m.hint_index + 1));
    ReplicateTo(from);
  }
}

}  // namespace fabricsim::ordering
