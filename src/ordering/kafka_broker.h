// Kafka broker model: a single-partition topic (Fabric uses one partition
// per channel, §III of the paper) with leader/follower replication.
//
// - The controller (and partition leader) is elected through ZooKeeper: each
//   broker races to create the ephemeral "/controller" znode; the winner
//   leads, losers watch it. When the leader's ZK session expires, the watch
//   fires and the survivors race again — the Kafka failover story the paper
//   summarizes.
// - The partition's ISR is the replication-factor-sized broker set; a
//   produced record is committed (visible to consumers / acked to the
//   producer) once every ISR follower has acknowledged it, matching the
//   paper's description of in-sync-replica commit.
// - Consumers (the OSNs) long-poll fetch from the committed prefix.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "fabric/calibration.h"
#include "ordering/messages.h"
#include "ordering/zookeeper.h"
#include "sim/machine.h"

namespace fabricsim::ordering {

struct KafkaConfig {
  int replication_factor = 3;  // the paper's default
  sim::SimDuration zk_heartbeat = sim::FromSeconds(2);
  std::size_t max_fetch_records = 256;
  /// A follower that stays behind and silent for this long is dropped from
  /// the in-sync replica set (Kafka's replica.lag.time.max.ms).
  sim::SimDuration isr_lag_limit = sim::FromSeconds(6);
};

class KafkaBroker {
 public:
  /// One KafkaBroker instance hosts one partition (= one channel / topic;
  /// the paper's §III). Multi-channel deployments place one instance per
  /// channel on each broker Machine.
  KafkaBroker(sim::Environment& env, sim::Machine& machine,
              const fabric::Calibration& cal, KafkaConfig config, int index,
              std::vector<sim::NodeId> zk_ids,
              std::string topic = "mychannel");

  /// All brokers of the cluster, in index order (includes self).
  void SetPeers(std::vector<sim::NodeId> brokers);

  /// Begins the ZK session and the controller race.
  void Start();

  [[nodiscard]] sim::NodeId NetId() const { return net_id_; }

  /// The machine hosting this node (its scheduler lane owns all the
  /// node's timers and deliveries under the PDES engine).
  [[nodiscard]] sim::Machine& Host() { return machine_; }
  [[nodiscard]] bool IsPartitionLeader() const { return is_leader_; }
  [[nodiscard]] std::uint64_t LogEnd() const { return log_.size(); }
  [[nodiscard]] std::uint64_t HighWatermark() const { return high_watermark_; }
  /// Leader-side ISR size including self (followers currently in sync).
  [[nodiscard]] std::size_t IsrSize() const {
    return follower_log_end_.size() + 1;
  }
  /// Followers dropped from the ISR that the leader is still catching up.
  [[nodiscard]] std::size_t CatchingUp() const {
    return catchup_log_end_.size();
  }

 private:
  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg);
  void SendZk(ZkOp op, const std::string& path, const std::string& data,
              std::function<void(const ZkResponseMsg&)> on_reply);
  void HeartbeatTick();
  void TryBecomeController();
  void OnBecameLeader();
  void HandleProduce(sim::NodeId from, const KafkaProduceMsg& m);
  void HandleFetch(sim::NodeId from, const KafkaFetchMsg& m);
  void ReplicateToFollowers();
  void MaybeAdvanceHighWatermark();
  void AnswerPendingFetches();
  void IsrMaintenanceTick();
  [[nodiscard]] std::vector<sim::NodeId> IsrFollowers() const;

  sim::Environment& env_;
  sim::Machine& machine_;
  const fabric::Calibration& cal_;
  KafkaConfig config_;
  int index_;
  std::string topic_;
  sim::NodeId net_id_ = sim::kInvalidNode;
  std::vector<sim::NodeId> zk_ids_;
  std::vector<sim::NodeId> brokers_;

  bool is_leader_ = false;
  bool controller_race_in_flight_ = false;

  // Partition log (leader and followers).
  std::vector<KafkaRecord> log_;
  std::uint64_t high_watermark_ = 0;

  // Leader-side replication progress: follower -> acked log end.
  std::map<sim::NodeId, std::uint64_t> follower_log_end_;
  // Followers dropped from the ISR (crashed/partitioned) that the leader
  // keeps replicating to; once one acks the full log it re-enters the ISR
  // (Kafka's shrink/re-expand cycle on broker revive).
  std::map<sim::NodeId, std::uint64_t> catchup_log_end_;
  // Leader-side liveness: follower -> last ack time (for ISR shrinking).
  std::map<sim::NodeId, sim::SimTime> follower_last_ack_;
  // One replication batch in flight per follower (pipelined, not resent on
  // every produce — resending the whole unacked window per record would be
  // quadratic traffic). A lost batch is recovered by the retry tick.
  std::map<sim::NodeId, bool> replication_in_flight_;
  // Producer acks owed: offset -> producer node.
  std::multimap<std::uint64_t, sim::NodeId> pending_produce_acks_;
  // Long-poll fetches: consumer -> wanted offset.
  std::map<sim::NodeId, std::uint64_t> pending_fetches_;

  std::uint64_t next_zk_request_ = 1;
  std::map<std::uint64_t, std::function<void(const ZkResponseMsg&)>>
      zk_callbacks_;
};

}  // namespace fabricsim::ordering
