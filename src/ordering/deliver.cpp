#include "ordering/deliver.h"

#include <algorithm>

namespace fabricsim::ordering {

BlockAssembler::BlockAssembler(const crypto::Identity& signer,
                               double hash_us_per_kib,
                               sim::SimDuration base_cpu)
    : signer_(signer), hash_us_per_kib_(hash_us_per_kib), base_cpu_(base_cpu) {}

AssembledBlock BlockAssembler::Assemble(const Batch& batch) {
  std::vector<proto::TransactionEnvelope> txs;
  txs.reserve(batch.size());
  for (const auto& env : batch) txs.push_back(*env);

  auto block = std::make_shared<proto::Block>(proto::Block::Make(
      next_number_, next_number_ == 0 ? nullptr : &prev_hash_,
      std::move(txs)));

  // Orderer signs the header; validation codes are filled by committers.
  block->metadata.orderer_cert = signer_.Cert().Serialize();
  block->metadata.orderer_signature = signer_.Sign(block->header.Serialize());

  AssembledBlock out;
  out.wire_size = block->WireSize();
  out.cpu_cost =
      base_cpu_ + sim::FromMicros(hash_us_per_kib_ *
                                  static_cast<double>(out.wire_size) / 1024.0);
  prev_hash_ = block->header.Hash();
  ++next_number_;
  out.block = std::move(block);
  return out;
}

void DeliverService::Subscribe(sim::NodeId peer) {
  if (!IsSubscribed(peer)) subscribers_.push_back(peer);
}

bool DeliverService::IsSubscribed(sim::NodeId peer) const {
  return std::find(subscribers_.begin(), subscribers_.end(), peer) !=
         subscribers_.end();
}

void DeliverService::Deliver(const AssembledBlock& b) {
  for (sim::NodeId peer : subscribers_) DeliverTo(peer, b);
}

void DeliverService::DeliverTo(sim::NodeId peer, const AssembledBlock& b,
                               bool ack_requested) {
  net_.Send(self_, peer,
            std::make_shared<DeliverBlockMsg>(b.block, b.wire_size,
                                              channel_id_, net_.Now(),
                                              ack_requested));
}

}  // namespace fabricsim::ordering
