#include "ordering/osn_base.h"

#include "obs/trace.h"

namespace fabricsim::ordering {

OsnBase::OsnBase(sim::Environment& env, sim::Machine& machine,
                 crypto::Identity identity, const fabric::Calibration& cal,
                 metrics::TxTracker* tracker, const std::string& net_name,
                 std::string channel_id)
    : env_(env),
      machine_(machine),
      identity_(std::move(identity)),
      cal_(cal),
      tracker_(tracker),
      channel_id_(std::move(channel_id)),
      net_id_(env.Net().Register(
          net_name,
          [this](sim::NodeId from, sim::MessagePtr msg) {
            OnMessage(from, std::move(msg));
          })),
      assembler_(identity_, cal.block_hash_us_per_kib,
                 cal.block_assemble_base_cpu),
      deliver_(env.Net(), net_id_, channel_id_) {}

void OsnBase::SetGenesis(const proto::Block& genesis) {
  genesis_next_number_ = genesis.header.number + 1;
  genesis_hash_ = genesis.header.Hash();
  assembler_.SetNext(genesis_next_number_, genesis_hash_);
  next_deliver_number_ = genesis_next_number_;
}

void OsnBase::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (auto bc = std::dynamic_pointer_cast<const BroadcastEnvelopeMsg>(msg)) {
    broadcast_log_.Record(env_.Now());
    if (auto* tr = env_.Trace()) {
      tr->Record(tr->PidFor(machine_.Name()), obs::SpanKind::kWire,
                 "rpc.broadcast", bc->Envelope()->tx_id, bc->SentAt(),
                 env_.Now());
    }
    // Charge envelope unmarshal + signature/policy verification, then hand
    // to the consenter and ack the client.
    const sim::SimTime enqueued = env_.Now();
    machine_.GetCpu().Submit(
        cal_.orderer_verify_cpu,
        [this, from, enqueued, env = bc->Envelope(), size = bc->WireSize()]() {
          if (auto* tr = env_.Trace()) {
            tr->RecordResourceSpan(
                tr->PidFor(machine_.Name()), "orderer.verify", env->tx_id,
                enqueued, env_.Now(),
                machine_.GetCpu().ScaledCost(cal_.orderer_verify_cpu));
          }
          const bool ok = AcceptEnvelope(env, size);
          if (auto* tr = env_.Trace(); tr != nullptr && ok) {
            // Open until the tx lands in a delivered block: batching wait +
            // consensus replication + assembly, the whole ordering pipeline.
            tr->Begin(tr->PidFor(machine_.Name()), obs::SpanKind::kQueue,
                      "order.consensus", env->tx_id, env_.Now());
          }
          env_.Net().Send(net_id_, from,
                          std::make_shared<BroadcastAckMsg>(env->tx_id, ok));
        },
        /*high_priority=*/true);
    return;
  }
  if (auto ping = std::dynamic_pointer_cast<const DeliverPingMsg>(msg)) {
    // Liveness probe from a subscribed peer: answer immediately. No CPU
    // charge — the real Deliver stream's keepalive is a transport-level
    // frame, not an application request.
    env_.Net().Send(net_id_, from,
                    std::make_shared<DeliverPongMsg>(ping->ChannelId()));
    return;
  }
  if (auto sub = std::dynamic_pointer_cast<const SubscribeRequestMsg>(msg)) {
    if (sub->ChannelId() == channel_id_) {
      SubscribePeerFrom(from, sub->FromNumber());
    }
    return;
  }
  OnOtherMessage(from, msg);
}

void OsnBase::SubscribePeerFrom(sim::NodeId peer, std::uint64_t from_number) {
  deliver_.Subscribe(peer);
  // Backfill what this OSN already delivered past the peer's height; blocks
  // the OSN has not seen yet will arrive through the normal deliver path.
  for (auto it = history_.lower_bound(from_number); it != history_.end();
       ++it) {
    deliver_.DeliverTo(peer, it->second);
  }
}

void OsnBase::FinishBlock(AssembledBlock b) {
  out_of_order_.emplace(b.block->header.number, std::move(b));
  while (true) {
    auto it = out_of_order_.find(next_deliver_number_);
    if (it == out_of_order_.end()) break;
    const AssembledBlock& ready = it->second;
    if (tracker_ != nullptr) {
      tracker_->RecordBlockCut(env_.Now(), ready.block->TxCount());
      auto* tr = env_.Trace();
      for (const auto& tx : ready.block->transactions) {
        tracker_->MarkOrdered(tx.tx_id, env_.Now());
        // Close exactly where MarkOrdered stamps the phase boundary (the
        // span may have been opened on a different OSN instance).
        if (tr != nullptr) tr->End(tx.tx_id, "order.consensus", env_.Now());
      }
    }
    ++delivered_blocks_;
    deliver_.Deliver(ready);
    history_.emplace(ready.block->header.number, ready);
    out_of_order_.erase(it);
    ++next_deliver_number_;
  }
}

void OsnBase::AssembleAsync(Batch batch,
                            std::function<void(AssembledBlock)> done) {
  // Assemble immediately (deterministic data), then charge the CPU cost
  // before surfacing the block to the consenter.
  AssembledBlock built = assembler_.Assemble(batch);
  const sim::SimDuration cost = built.cpu_cost;
  const sim::SimTime enqueued = env_.Now();
  machine_.GetCpu().Submit(
      cost,
      [this, cost, enqueued, built = std::move(built),
       done = std::move(done)]() mutable {
        if (auto* tr = env_.Trace()) {
          tr->RecordResourceSpan(
              tr->PidFor(machine_.Name()), "block.assemble",
              "block:" + channel_id_ + ":" +
                  std::to_string(built.block->header.number),
              enqueued, env_.Now(), machine_.GetCpu().ScaledCost(cost));
        }
        done(std::move(built));
      });
}

}  // namespace fabricsim::ordering
