#include "ordering/osn_base.h"

#include "obs/trace.h"

namespace fabricsim::ordering {

OsnBase::OsnBase(sim::Environment& env, sim::Machine& machine,
                 crypto::Identity identity, const fabric::Calibration& cal,
                 metrics::TxTracker* tracker, const std::string& net_name,
                 std::string channel_id)
    : env_(env),
      machine_(machine),
      identity_(std::move(identity)),
      cal_(cal),
      tracker_(tracker),
      channel_id_(std::move(channel_id)),
      net_id_(env.Net().Register(
          net_name,
          [this](sim::NodeId from, sim::MessagePtr msg) {
            OnMessage(from, std::move(msg));
          })),
      assembler_(identity_, cal.block_hash_us_per_kib,
                 cal.block_assemble_base_cpu),
      deliver_(env.Net(), net_id_, channel_id_) {}

void OsnBase::SetGenesis(const proto::Block& genesis) {
  genesis_next_number_ = genesis.header.number + 1;
  genesis_hash_ = genesis.header.Hash();
  assembler_.SetNext(genesis_next_number_, genesis_hash_);
  next_deliver_number_ = genesis_next_number_;
}

void OsnBase::SetAdmission(const sim::AdmissionConfig& config,
                           sim::SimDuration retry_after) {
  ingress_.Configure(config);
  retry_after_ = retry_after;
}

void OsnBase::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (auto bc = std::dynamic_pointer_cast<const BroadcastEnvelopeMsg>(msg)) {
    broadcast_log_.Record(env_.Now());
    if (auto* tr = env_.Trace()) {
      tr->Record(tr->PidFor(machine_.Name()), obs::SpanKind::kWire,
                 "rpc.broadcast", bc->Envelope()->tx_id, bc->SentAt(),
                 env_.Now());
    }
    AdmitForVerify({from, bc->Envelope(), bc->WireSize()});
    return;
  }
  if (auto ping = std::dynamic_pointer_cast<const DeliverPingMsg>(msg)) {
    // Liveness probe from a subscribed peer: answer immediately. No CPU
    // charge — the real Deliver stream's keepalive is a transport-level
    // frame, not an application request.
    env_.Net().Send(net_id_, from,
                    std::make_shared<DeliverPongMsg>(ping->ChannelId()));
    return;
  }
  if (auto sub = std::dynamic_pointer_cast<const SubscribeRequestMsg>(msg)) {
    if (sub->ChannelId() == channel_id_) {
      SubscribePeerFrom(from, sub->FromNumber());
    }
    return;
  }
  if (auto ack = std::dynamic_pointer_cast<const DeliverAckMsg>(msg)) {
    if (ack->ChannelId() == channel_id_) OnDeliverAck(from);
    return;
  }
  if (auto att =
          std::dynamic_pointer_cast<const BlockAttestRequestMsg>(msg)) {
    if (att->ChannelId() == channel_id_) {
      // Answer from the canonical history. Like the deliver ping, this is a
      // metadata lookup, not an application request: no CPU charge.
      const auto hash = HistoryHeaderHash(att->BlockNumber());
      env_.Net().Send(net_id_, from,
                      std::make_shared<BlockAttestReplyMsg>(
                          channel_id_, att->BlockNumber(), hash.has_value(),
                          hash.value_or(crypto::Digest{})));
    }
    return;
  }
  OnOtherMessage(from, msg);
}

std::optional<crypto::Digest> OsnBase::HistoryHeaderHash(
    std::uint64_t number) const {
  const auto it = history_.find(number);
  if (it == history_.end()) return std::nullopt;
  return it->second.block->header.Hash();
}

void OsnBase::AdmitForVerify(PendingIngress item) {
  if (!AdmissionEnabled()) {
    // Legacy unbounded path: every envelope goes straight to verification.
    StartVerify(std::move(item));
    return;
  }
  auto result = ingress_.Offer(std::move(item));
  if (result.admit) StartVerify(std::move(*result.admit));
  if (!result.shed.empty()) ShedIngress(std::move(result.shed));
}

void OsnBase::ShedIngress(std::vector<PendingIngress> shed) {
  const bool silent =
      ingress_.Config().policy == sim::OverloadPolicy::kBlock;
  for (auto& item : shed) {
    if (auto* tr = env_.Trace()) {
      tr->Record(tr->PidFor(machine_.Name()), obs::SpanKind::kOther,
                 "overload.shed", item.env->tx_id, env_.Now(), env_.Now());
    }
    // Under the block policy overflow vanishes (transport backpressure);
    // the client's broadcast timeout surfaces the terminal status.
    if (!silent) NackOverloaded(item.from, item.env->tx_id);
  }
}

void OsnBase::NackOverloaded(sim::NodeId to, const std::string& tx_id) {
  env_.Net().Send(net_id_, to,
                  std::make_shared<BroadcastAckMsg>(
                      tx_id, BroadcastStatus::kOverloaded, retry_after_));
}

void OsnBase::StartVerify(PendingIngress item) {
  // Charge envelope unmarshal + signature/policy verification, then hand
  // to the consenter and ack the submitter.
  const sim::SimTime enqueued = env_.Now();
  machine_.GetCpu().Submit(
      cal_.orderer_verify_cpu,
      [this, enqueued, item = std::move(item)]() {
        if (auto* tr = env_.Trace()) {
          tr->RecordResourceSpan(
              tr->PidFor(machine_.Name()), "orderer.verify", item.env->tx_id,
              enqueued, env_.Now(),
              machine_.GetCpu().ScaledCost(cal_.orderer_verify_cpu));
        }
        const AcceptResult r =
            AcceptEnvelope(item.env, item.wire_size, item.from);
        switch (r) {
          case AcceptResult::kOk:
            if (AdmissionEnabled()) ++admitted_txs_[item.env->tx_id];
            if (auto* tr = env_.Trace()) {
              // Open until the tx lands in a delivered block: batching wait
              // + consensus replication + assembly, the whole ordering
              // pipeline.
              tr->Begin(tr->PidFor(machine_.Name()), obs::SpanKind::kQueue,
                        "order.consensus", item.env->tx_id, env_.Now());
            }
            env_.Net().Send(
                net_id_, item.from,
                std::make_shared<BroadcastAckMsg>(item.env->tx_id, true));
            break;
          case AcceptResult::kNack:
            env_.Net().Send(
                net_id_, item.from,
                std::make_shared<BroadcastAckMsg>(item.env->tx_id, false));
            if (AdmissionEnabled()) ReleaseIngressSlot();
            break;
          case AcceptResult::kDeferred:
            // Another node owns the envelope now and will ack the origin;
            // this node's pipeline is done with it.
            if (AdmissionEnabled()) ReleaseIngressSlot();
            break;
        }
      },
      /*high_priority=*/true);
}

void OsnBase::ReleaseIngressSlot() {
  if (auto next = ingress_.Release()) StartVerify(std::move(*next));
}

void OsnBase::ReleaseAdmittedTx(const std::string& tx_id) {
  auto it = admitted_txs_.find(tx_id);
  if (it == admitted_txs_.end()) return;
  if (--it->second == 0) admitted_txs_.erase(it);
  ReleaseIngressSlot();
}

void OsnBase::ResetAdmission() {
  const auto config = ingress_.Config();
  ingress_ = sim::AdmissionQueue<PendingIngress>(config);
  admitted_txs_.clear();
}

void OsnBase::SubscribePeerFrom(sim::NodeId peer, std::uint64_t from_number) {
  deliver_.Subscribe(peer);
  // Backfill what this OSN already delivered past the peer's height; blocks
  // the OSN has not seen yet will arrive through the normal deliver path.
  // The backfill is windowed so a rejoining peer's catch-up traffic cannot
  // monopolize the wire: at most backfill_window_ blocks in flight, each
  // acked by the peer before the window slides.
  BackfillState& st = backfill_[peer];
  st.next = from_number;
  st.inflight = 0;
  ++st.version;
  PumpBackfill(peer);
}

void OsnBase::PumpBackfill(sim::NodeId peer) {
  auto it = backfill_.find(peer);
  if (it == backfill_.end()) return;
  BackfillState& st = it->second;
  while (st.inflight < backfill_window_) {
    auto h = history_.lower_bound(st.next);
    if (h == history_.end()) break;
    st.next = h->first + 1;
    ++st.inflight;
    ++st.version;
    if (byz_bogus_backfill_) {
      // Malicious deliver history: the catch-up stream serves corrupted
      // copies while the attack window is open. The committer's data-hash
      // check rejects them; once the window closes, the next repair
      // subscription backfills the honest copies still held here.
      deliver_.DeliverTo(peer, TamperedCopy(h->second),
                         /*ack_requested=*/true);
    } else {
      deliver_.DeliverTo(peer, h->second, /*ack_requested=*/true);
    }
  }
  if (st.inflight == 0) {
    // Caught up with history; future blocks flow through normal delivery.
    backfill_.erase(it);
    return;
  }
  // Lost-ack guard: if nothing moves for a while, assume the outstanding
  // window made it (legacy backfill had no retransmit either) and advance.
  const std::uint64_t version = st.version;
  env_.Sched().ScheduleAfter(
      backfill_timeout_,
      [this, peer, version]() {
        auto g = backfill_.find(peer);
        if (g == backfill_.end() || g->second.version != version) return;
        g->second.inflight = 0;
        ++g->second.version;
        PumpBackfill(peer);
      },
      "osn/backfill_timeout");
}

void OsnBase::OnDeliverAck(sim::NodeId peer) {
  auto it = backfill_.find(peer);
  if (it == backfill_.end()) return;
  if (it->second.inflight > 0) --it->second.inflight;
  ++it->second.version;
  PumpBackfill(peer);
}

void OsnBase::FinishBlock(AssembledBlock b) {
  out_of_order_.emplace(b.block->header.number, std::move(b));
  while (true) {
    auto it = out_of_order_.find(next_deliver_number_);
    if (it == out_of_order_.end()) break;
    const AssembledBlock& ready = it->second;
    if (tracker_ != nullptr) {
      tracker_->RecordBlockCut(env_.Now(), ready.block->TxCount());
      auto* tr = env_.Trace();
      for (const auto& tx : ready.block->transactions) {
        tracker_->MarkOrdered(tx.tx_id, env_.Now());
        // Close exactly where MarkOrdered stamps the phase boundary (the
        // span may have been opened on a different OSN instance).
        if (tr != nullptr) tr->End(tx.tx_id, "order.consensus", env_.Now());
      }
    }
    // A delivered block is the end of the ordering pipeline: free the
    // ingress slots of every tx this node admitted.
    if (!admitted_txs_.empty()) {
      for (const auto& tx : ready.block->transactions) {
        auto slot = admitted_txs_.find(tx.tx_id);
        if (slot == admitted_txs_.end()) continue;
        if (--slot->second == 0) admitted_txs_.erase(slot);
        ReleaseIngressSlot();
      }
    }
    ++delivered_blocks_;
    if (byz_tamper_ || byz_equivocate_) {
      DeliverByzantine(ready);
    } else {
      deliver_.Deliver(ready);
    }
    history_.emplace(ready.block->header.number, ready);
    if (history_blocks_ > 0) {
      // Bounded backfill history: anything a subscriber might still seek
      // beyond this window is simply gone, like a Fabric orderer whose log
      // was snapshotted/compacted.
      while (history_.size() > history_blocks_) {
        history_.erase(history_.begin());
      }
    }
    out_of_order_.erase(it);
    ++next_deliver_number_;
  }
}

void OsnBase::DeliverByzantine(const AssembledBlock& ready) {
  if (byz_tamper_) {
    // Same corrupt copy to everyone: payload mutated, header (and thus the
    // orderer signature) left intact, so only the data-hash re-check at the
    // committer can notice.
    deliver_.Deliver(TamperedCopy(ready));
    return;
  }
  // Equivocation: the odd-indexed subscribers get a divergent, re-signed
  // variant; the rest get the canonical block. With a single subscriber the
  // lie goes to it — the divergence is then only visible across OSNs.
  const AssembledBlock forged = ForgedVariant(ready);
  const auto& subs = deliver_.Subscribers();
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const bool lie = subs.size() == 1 || (i % 2 == 1);
    deliver_.DeliverTo(subs[i], lie ? forged : ready);
  }
}

AssembledBlock OsnBase::TamperedCopy(const AssembledBlock& b) const {
  auto copy = std::make_shared<proto::Block>(*b.block);
  if (!copy->transactions.empty()) {
    copy->transactions.front().chaincode_result.push_back(0xA5);
    copy->transactions.front().InvalidateCaches();
  }
  copy->InvalidateCaches();
  AssembledBlock out = b;
  out.block = std::move(copy);
  return out;
}

AssembledBlock OsnBase::ForgedVariant(const AssembledBlock& b) const {
  // Rebuild the block with one transaction's payload mutated, recompute the
  // data hash, and re-sign the header: structurally indistinguishable from
  // an honest block signed by this (trusted) orderer identity.
  std::vector<proto::TransactionEnvelope> txs = b.block->transactions;
  if (!txs.empty()) {
    txs.front().chaincode_result.push_back(0x5A);
    txs.front().InvalidateCaches();
  }
  auto forged = std::make_shared<proto::Block>(
      proto::Block::Make(b.block->header.number,
                         &b.block->header.previous_hash, std::move(txs)));
  forged->metadata.orderer_cert = identity_.Cert().Serialize();
  forged->metadata.orderer_signature =
      identity_.Sign(forged->header.Serialize());
  AssembledBlock out = b;
  out.block = std::move(forged);
  return out;
}

void OsnBase::AssembleAsync(Batch batch,
                            std::function<void(AssembledBlock)> done) {
  // Assemble immediately (deterministic data), then charge the CPU cost
  // before surfacing the block to the consenter.
  AssembledBlock built = assembler_.Assemble(batch);
  const sim::SimDuration cost = built.cpu_cost;
  const sim::SimTime enqueued = env_.Now();
  machine_.GetCpu().Submit(
      cost,
      [this, cost, enqueued, built = std::move(built),
       done = std::move(done)]() mutable {
        if (auto* tr = env_.Trace()) {
          tr->RecordResourceSpan(
              tr->PidFor(machine_.Name()), "block.assemble",
              "block:" + channel_id_ + ":" +
                  std::to_string(built.block->header.number),
              enqueued, env_.Now(), machine_.GetCpu().ScaledCost(cost));
        }
        done(std::move(built));
      });
}

}  // namespace fabricsim::ordering
