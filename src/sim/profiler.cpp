#include "sim/profiler.h"

#include <algorithm>
#include <ostream>

namespace fabricsim::sim {

namespace {

const char* TagName(const char* tag) {
  return tag != nullptr ? tag : "untagged";
}

}  // namespace

void DesProfiler::OnEvent(const char* tag, SimTime sim_now, std::uint64_t t0_ns,
                          std::uint64_t t1_ns) {
  if (!started_) {
    started_ = true;
    first_ns_ = t0_ns;
  }
  last_ns_ = t1_ns;
  const std::uint64_t dur = t1_ns >= t0_ns ? t1_ns - t0_ns : 0;
  Counts& c = by_tag_[tag];
  ++c.count;
  c.total_ns += dur;
  total_ns_ += dur;
  ++events_;
  if (events_ % kTimelineEvery == 0) {
    timeline_.push_back({last_ns_ - first_ns_, events_, sim_now});
  }
  if (events_ % kSpanSampleEvery == 0 && spans_.size() < kMaxSpans) {
    spans_.push_back({tag, t0_ns - first_ns_, dur});
  }
}

ProfileReport DesProfiler::Report() const {
  ProfileReport out;
  out.total_events = events_;
  out.total_ns = total_ns_;
  out.timeline = timeline_;
  const std::uint64_t span = last_ns_ - first_ns_;
  out.events_per_sec =
      span > 0 ? static_cast<double>(events_) * 1e9 / static_cast<double>(span)
               : 0.0;

  // Merge by name: distinct literals with equal text (e.g. the same tag in
  // two translation units) collapse into one row.
  std::unordered_map<std::string, Counts> by_name;
  for (const auto& [tag, counts] : by_tag_) {
    Counts& c = by_name[TagName(tag)];
    c.count += counts.count;
    c.total_ns += counts.total_ns;
  }
  out.entries.reserve(by_name.size());
  for (auto& [name, counts] : by_name) {
    out.entries.push_back({name, counts.count, counts.total_ns});
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  return out;
}

void DesProfiler::Merge(const DesProfiler& other) {
  if (!other.started_) return;
  if (!started_) {
    started_ = true;
    first_ns_ = other.first_ns_;
  } else {
    first_ns_ = std::min(first_ns_, other.first_ns_);
  }
  last_ns_ = std::max(last_ns_, other.last_ns_);
  for (const auto& [tag, counts] : other.by_tag_) {
    Counts& c = by_tag_[tag];
    c.count += counts.count;
    c.total_ns += counts.total_ns;
  }
  events_ += other.events_;
  total_ns_ += other.total_ns_;
  for (const ProfileSample& s : other.timeline_) timeline_.push_back(s);
  std::sort(timeline_.begin(), timeline_.end(),
            [](const ProfileSample& a, const ProfileSample& b) {
              return a.host_ns < b.host_ns;
            });
  for (const Span& s : other.spans_) {
    if (spans_.size() >= kMaxSpans) break;
    spans_.push_back(s);
  }
}

void DesProfiler::Reset() {
  by_tag_.clear();
  timeline_.clear();
  spans_.clear();
  events_ = 0;
  total_ns_ = 0;
  first_ns_ = 0;
  last_ns_ = 0;
  started_ = false;
}

void DesProfiler::WriteChromeTrace(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) os << ",";
    first = false;
    // Chrome trace wants microseconds; keep three decimals of sub-us detail.
    os << "\n{\"name\":\"" << TagName(s.tag)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":"
       << static_cast<double>(s.start_ns) / 1e3
       << ",\"dur\":" << static_cast<double>(s.dur_ns) / 1e3 << "}";
  }
  os << "\n]\n";
}

}  // namespace fabricsim::sim
