// Host-side DES profiler: where does wall-clock time go inside the event
// loop?
//
// The scheduler dispatches every simulation callback; when a profiler is
// attached (off by default, `--profile` in the benches/CLI) each dispatch is
// bracketed with steady_clock reads and attributed to the event's tag — the
// string literal passed at ScheduleAt/ScheduleAfter time. The result is a
// per-handler table (count, total host ns) plus an events/s timeline sampled
// every 2^16 events, which is the measurement that decides where a PDES
// partitioning of the core should cut (ROADMAP item 2): there is no point
// parallelizing handlers that account for 2% of host time.
//
// Attribution is by tag identity (pointer), merged by name at report time,
// so tagging costs one stored pointer per event and nothing at dispatch.
// Untagged events land in "untagged". The profiler never touches simulated
// state: attaching it cannot change ExecutedEvents(), event order, or any
// simulated metric — only host wall clock (by a few percent; see
// EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace fabricsim::sim {

/// One row of the top-N handler table.
struct ProfileEntry {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // host nanoseconds inside the handler
};

/// One point of the events/s timeline (taken every 2^16 dispatches).
struct ProfileSample {
  std::uint64_t host_ns = 0;  // since the first profiled dispatch
  std::uint64_t events = 0;   // dispatches so far
  SimTime sim_now = 0;        // simulated clock at the sample
};

/// Everything the profiler measured, as a value (safe to keep after the
/// profiler and the scheduler are gone).
struct ProfileReport {
  std::vector<ProfileEntry> entries;  // sorted by total_ns descending
  std::vector<ProfileSample> timeline;
  std::uint64_t total_events = 0;
  std::uint64_t total_ns = 0;  // sum of handler time (excludes pop/heap cost)
  double events_per_sec = 0.0;  // total_events over first-to-last wall span
};

/// Collects per-tag dispatch counts and host-nanosecond totals. Attach with
/// Scheduler::SetProfiler; detach (nullptr) before the profiler dies.
class DesProfiler {
 public:
  DesProfiler() = default;
  DesProfiler(const DesProfiler&) = delete;
  DesProfiler& operator=(const DesProfiler&) = delete;

  /// Called by the scheduler after each dispatch. `t0_ns`/`t1_ns` are
  /// steady_clock readings bracketing the callback; the scheduler reads the
  /// clock so the profiler never pays for it twice.
  void OnEvent(const char* tag, SimTime sim_now, std::uint64_t t0_ns,
               std::uint64_t t1_ns);

  [[nodiscard]] ProfileReport Report() const;

  /// Folds another profiler's measurements into this one — the PDES engine
  /// gives each worker thread a private profiler and merges them into the
  /// attached one at the end of the run. Timeline points are re-sorted by
  /// host time; spans are appended up to the cap.
  void Merge(const DesProfiler& other);

  void Reset();

  /// Chrome trace-event JSON ("X" complete events, host microseconds) of the
  /// sampled spans — load in chrome://tracing or Perfetto. Spans are sampled
  /// (1 in kSpanSampleEvery dispatches, capped) so the file stays small even
  /// for hundred-million-event runs.
  void WriteChromeTrace(std::ostream& os) const;

  static constexpr std::uint64_t kTimelineEvery = 1u << 16;
  static constexpr std::uint64_t kSpanSampleEvery = 256;
  static constexpr std::size_t kMaxSpans = 100000;

 private:
  struct Counts {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  struct Span {
    const char* tag;
    std::uint64_t start_ns;  // since first profiled dispatch
    std::uint64_t dur_ns;
  };

  // Keyed by tag pointer: tags are string literals, so identity is cheap and
  // stable; distinct literals with equal text merge at Report time.
  std::unordered_map<const char*, Counts> by_tag_;
  std::vector<ProfileSample> timeline_;
  std::vector<Span> spans_;
  std::uint64_t events_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t first_ns_ = 0;
  std::uint64_t last_ns_ = 0;
  bool started_ = false;
};

}  // namespace fabricsim::sim
