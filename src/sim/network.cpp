#include "sim/network.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace fabricsim::sim {

Network::Network(Scheduler& sched, Rng rng, NetworkConfig config)
    : sched_(sched), rng_(rng), config_(config) {}

NodeId Network::Register(std::string name, Handler handler) {
  Endpoint ep;
  ep.name = std::move(name);
  ep.handler = std::move(handler);
  nodes_.push_back(std::move(ep));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::SetHandler(NodeId id, Handler handler) {
  nodes_.at(static_cast<std::size_t>(id)).handler = std::move(handler);
}

std::uint64_t Network::PairKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

void Network::Send(NodeId from, NodeId to, MessagePtr msg) {
  auto& src = nodes_.at(static_cast<std::size_t>(from));
  auto& dst = nodes_.at(static_cast<std::size_t>(to));
  ++messages_sent_;
  const std::size_t wire_bytes =
      msg->WireSize() + config_.per_message_overhead_bytes;
  bytes_sent_ += wire_bytes;

  if (src.crashed || dst.crashed || IsPartitioned(from, to) ||
      (from != to && rng_.NextBool(config_.loss_probability))) {
    ++messages_dropped_;
    return;
  }

  SimTime deliver_at;
  if (from == to) {
    deliver_at = sched_.Now() + FromMicros(2);  // loopback
  } else {
    // Sender NIC serialization: messages from one sender queue behind each
    // other; the NIC becomes free once the last byte is on the wire.
    const auto serialize = static_cast<SimDuration>(
        static_cast<double>(wire_bytes) * 8.0 * 1e9 / config_.bandwidth_bps);
    const SimTime start =
        src.nic_free_at > sched_.Now() ? src.nic_free_at : sched_.Now();
    src.nic_free_at = start + serialize;
    double jitter = 1.0 + config_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
    if (jitter < 0.0) jitter = 0.0;
    const auto latency = static_cast<SimDuration>(
        static_cast<double>(config_.base_latency) * jitter);
    deliver_at = src.nic_free_at + latency;
    // TCP semantics: a directed connection never reorders.
    const std::uint64_t conn =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
        static_cast<std::uint32_t>(to);
    SimTime& last = last_delivery_[conn];
    if (deliver_at <= last) deliver_at = last + 1;
    last = deliver_at;
  }

  if (observer_) observer_->OnSend(from, to, wire_bytes, deliver_at);
  sched_.ScheduleAt(
      deliver_at,
      [this, from, to, wire_bytes, msg = std::move(msg)]() {
        auto& receiver = nodes_.at(static_cast<std::size_t>(to));
        if (receiver.crashed) {
          ++messages_dropped_;
          if (observer_) observer_->OnDrop(from, to, wire_bytes);
          return;
        }
        ++messages_delivered_;
        if (observer_) observer_->OnDeliver(from, to, wire_bytes);
        if (receiver.handler) receiver.handler(from, msg);
      },
      "net/deliver");
}

void Network::Partition(NodeId a, NodeId b) { partitions_.insert(PairKey(a, b)); }

void Network::Heal(NodeId a, NodeId b) { partitions_.erase(PairKey(a, b)); }

void Network::HealAll() { partitions_.clear(); }

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  return partitions_.count(PairKey(a, b)) != 0;
}

void Network::Crash(NodeId id) {
  nodes_.at(static_cast<std::size_t>(id)).crashed = true;
}

void Network::Revive(NodeId id) {
  nodes_.at(static_cast<std::size_t>(id)).crashed = false;
}

bool Network::IsCrashed(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id)).crashed;
}

void Network::SetLossProbability(double p) {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  config_.loss_probability = p;
}

const std::string& Network::NameOf(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id)).name;
}

}  // namespace fabricsim::sim
