#include "sim/network.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace fabricsim::sim {

namespace {

// SplitMix64 finalizer over (base, from, to): a well-mixed per-directed-pair
// seed that never collides streams of distinct links in practice.
std::uint64_t MixLinkSeed(std::uint64_t base, NodeId from, NodeId to) {
  std::uint64_t x =
      base ^
      ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
       static_cast<std::uint32_t>(to));
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Network::Network(Scheduler& sched, Rng rng, NetworkConfig config)
    : sched_(sched), rng_(rng), link_seed_base_(rng_.Next()), config_(config) {}

NodeId Network::Register(std::string name, Handler handler) {
  Endpoint ep;
  ep.name = std::move(name);
  ep.handler = std::move(handler);
  ep.lane = sched_.CurrentLane();
  nodes_.push_back(std::move(ep));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Rng& Network::LinkRng(Endpoint& src, NodeId from, NodeId to) {
  const auto index = static_cast<std::size_t>(to);
  if (index >= src.link_rng.size()) src.link_rng.resize(index + 1);
  std::optional<Rng>& slot = src.link_rng[index];
  if (!slot.has_value()) slot.emplace(MixLinkSeed(link_seed_base_, from, to));
  return *slot;
}

void Network::SetHandler(NodeId id, Handler handler) {
  nodes_.at(static_cast<std::size_t>(id)).handler = std::move(handler);
}

std::uint64_t Network::PairKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

void Network::Send(NodeId from, NodeId to, MessagePtr msg) {
  auto& src = nodes_.at(static_cast<std::size_t>(from));
  auto& dst = nodes_.at(static_cast<std::size_t>(to));
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t wire_bytes =
      msg->WireSize() + config_.per_message_overhead_bytes;
  bytes_sent_.fetch_add(wire_bytes, std::memory_order_relaxed);

  if (src.crashed || dst.crashed || IsPartitioned(from, to) ||
      (from != to &&
       LinkRng(src, from, to).NextBool(config_.loss_probability))) {
    messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  SimTime deliver_at;
  if (from == to) {
    deliver_at = sched_.Now() + FromMicros(2);  // loopback
  } else {
    // Sender NIC serialization: messages from one sender queue behind each
    // other; the NIC becomes free once the last byte is on the wire.
    const auto serialize = static_cast<SimDuration>(
        static_cast<double>(wire_bytes) * 8.0 * 1e9 / config_.bandwidth_bps);
    const SimTime start =
        src.nic_free_at > sched_.Now() ? src.nic_free_at : sched_.Now();
    src.nic_free_at = start + serialize;
    double jitter = 1.0 + config_.jitter_fraction *
                              (2.0 * LinkRng(src, from, to).NextDouble() - 1.0);
    if (jitter < 0.0) jitter = 0.0;
    const auto latency = static_cast<SimDuration>(
        static_cast<double>(config_.base_latency) * jitter);
    deliver_at = src.nic_free_at + latency;
    // TCP semantics: a directed connection never reorders.
    const auto dst_index = static_cast<std::size_t>(to);
    if (dst_index >= src.last_to.size()) src.last_to.resize(dst_index + 1, 0);
    SimTime& last = src.last_to[dst_index];
    if (deliver_at <= last) deliver_at = last + 1;
    last = deliver_at;
  }

  if (observer_) observer_->OnSend(from, to, wire_bytes, deliver_at);
  // Delivery executes in the receiver's lane, ordered by the sender's key:
  // under the PDES engine a cross-lane delivery rides the mailbox and the
  // lookahead floor guarantees it lands beyond the current window.
  sched_.ScheduleAtLane(
      dst.lane, deliver_at,
      [this, from, to, wire_bytes, msg = std::move(msg)]() {
        auto& receiver = nodes_.at(static_cast<std::size_t>(to));
        if (receiver.crashed) {
          messages_dropped_.fetch_add(1, std::memory_order_relaxed);
          if (observer_) observer_->OnDrop(from, to, wire_bytes);
          return;
        }
        messages_delivered_.fetch_add(1, std::memory_order_relaxed);
        if (observer_) observer_->OnDeliver(from, to, wire_bytes);
        if (receiver.handler) receiver.handler(from, msg);
      },
      "net/deliver");
}

SimDuration Network::LookaheadFloor() const {
  const auto serialize_min = static_cast<SimDuration>(
      static_cast<double>(config_.per_message_overhead_bytes) * 8.0 * 1e9 /
      config_.bandwidth_bps);
  double jf = config_.jitter_fraction;
  if (jf < 0.0) jf = 0.0;
  if (jf > 1.0) jf = 1.0;
  const auto latency_min = static_cast<SimDuration>(
      static_cast<double>(config_.base_latency) * (1.0 - jf));
  // Both terms truncate the same monotone formulas the send path uses, so
  // serialize >= serialize_min and latency >= latency_min hold exactly.
  return serialize_min + latency_min;
}

void Network::Partition(NodeId a, NodeId b) { partitions_.insert(PairKey(a, b)); }

void Network::Heal(NodeId a, NodeId b) { partitions_.erase(PairKey(a, b)); }

void Network::HealAll() { partitions_.clear(); }

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  return partitions_.count(PairKey(a, b)) != 0;
}

void Network::Crash(NodeId id) {
  nodes_.at(static_cast<std::size_t>(id)).crashed = true;
}

void Network::Revive(NodeId id) {
  nodes_.at(static_cast<std::size_t>(id)).crashed = false;
}

bool Network::IsCrashed(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id)).crashed;
}

void Network::SetLossProbability(double p) {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  config_.loss_probability = p;
}

const std::string& Network::NameOf(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id)).name;
}

}  // namespace fabricsim::sim
