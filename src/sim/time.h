// Simulated-time primitives for the discrete-event simulation kernel.
//
// All simulated time is kept in integral nanoseconds (`SimTime`) so that event
// ordering is exact and runs are bit-reproducible across platforms; floating
// point appears only at the edges (metric reporting, rate parameters).
#pragma once

#include <cstdint>

namespace fabricsim::sim {

/// Simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// A span of simulated time, also in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

/// Builds a duration from (possibly fractional) milliseconds.
constexpr SimDuration FromMillis(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

/// Builds a duration from (possibly fractional) microseconds.
constexpr SimDuration FromMicros(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}

/// Builds a duration from (possibly fractional) seconds.
constexpr SimDuration FromSeconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

/// Converts a simulated time or duration to fractional seconds.
constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a simulated time or duration to fractional milliseconds.
constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace fabricsim::sim
