// Deterministic discrete-event scheduler.
//
// The scheduler is the heart of the simulation: every component (network
// links, CPU cores, protocol timers) enqueues callbacks at future simulated
// times and the scheduler executes them in (time, insertion-sequence) order.
// Ties on time break by insertion order, which keeps runs deterministic.
//
// Events live in a slab with a free list: each schedule reuses a recycled
// slot instead of heap-allocating per event, and the priority queue holds
// small POD entries (time, seq, slot, generation) instead of owning the
// callback. Slot generations make cancelled or recycled slots unambiguous,
// so no side lookup structure is needed on the hot path.
//
// Two orthogonal extensions serve observability without disturbing results:
//
//  - Tags: ScheduleAt/ScheduleAfter accept an optional string-literal tag
//    naming the handler ("net/deliver", "raft/tick", ...). Tags cost one
//    stored pointer and feed the host-side DesProfiler's per-handler
//    attribution when one is attached via SetProfiler (off by default).
//
//  - Observer events: ScheduleObserverAt/After enqueue callbacks that
//    dispatch in the normal deterministic order but are excluded from
//    ExecutedEvents(). Samplers (telemetry, metrics registry) use them, so
//    attaching observability never changes the executed-event count that the
//    bench regression gate compares bit-exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace fabricsim::sim {

class DesProfiler;

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Never zero for a live event (0 is a safe "no event" sentinel).
using EventId = std::uint64_t;

/// Discrete-event scheduler with cancellable events.
///
/// Not thread-safe by design: the whole simulation is single-threaded and
/// deterministic. Event callbacks may schedule further events (including at
/// the current time, which run after all previously queued events for that
/// time).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Starts at zero.
  [[nodiscard]] SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute simulated time `when`.
  /// Times in the past are clamped to `Now()` (the event runs next).
  /// `tag` must be a string literal (or otherwise outlive the scheduler);
  /// it names the handler in profiler output.
  EventId ScheduleAt(SimTime when, Callback cb, const char* tag = nullptr) {
    return ScheduleImpl(when, std::move(cb), tag, /*observer=*/false);
  }

  /// Schedules `cb` to run `delay` after the current time.
  EventId ScheduleAfter(SimDuration delay, Callback cb,
                        const char* tag = nullptr) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb), tag);
  }

  /// Observer variants: the callback dispatches in normal (time, seq) order
  /// but does not count toward ExecutedEvents(). For pure samplers only —
  /// observer callbacks must not mutate simulation state.
  EventId ScheduleObserverAt(SimTime when, Callback cb,
                             const char* tag = nullptr) {
    return ScheduleImpl(when, std::move(cb), tag, /*observer=*/true);
  }
  EventId ScheduleObserverAfter(SimDuration delay, Callback cb,
                                const char* tag = nullptr) {
    return ScheduleObserverAt(now_ + (delay < 0 ? 0 : delay), std::move(cb),
                              tag);
  }

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; cancelling a fired or unknown event is a harmless no-op.
  /// The callback is destroyed (captures released) immediately.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed (observer events included).
  std::uint64_t Run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with time <= `until`. After returning, `Now() == until`
  /// unless the queue emptied first (then Now() is the last event time).
  /// Returns the number of events executed.
  std::uint64_t RunUntil(SimTime until);

  /// Executes exactly one event if any is pending. Returns false if idle.
  bool Step();

  /// Number of events currently scheduled and not yet fired or cancelled.
  [[nodiscard]] std::size_t PendingEvents() const { return live_; }

  /// Total number of component events executed since construction. Observer
  /// events are excluded, so this count is invariant under attached
  /// observability and is compared bit-exactly by the bench gate.
  [[nodiscard]] std::uint64_t ExecutedEvents() const { return executed_; }

  /// Attaches (or detaches, with nullptr) the host-time profiler. The
  /// profiler must outlive its attachment. When detached — the default —
  /// dispatch pays one predictable branch.
  void SetProfiler(DesProfiler* profiler) { profiler_ = profiler; }

  /// Pool introspection (tests): total slots ever created, and how many are
  /// currently on the free list. Capacity grows to the high-water mark of
  /// concurrently pending events and is then reused indefinitely.
  [[nodiscard]] std::size_t PoolCapacity() const { return slab_.size(); }
  [[nodiscard]] std::size_t PoolFree() const { return free_.size(); }

 private:
  // One pooled event slot. `gen` is bumped every time the slot is released
  // (fired or cancelled), so stale heap entries and stale EventIds referring
  // to a recycled slot can never match again.
  struct Event {
    Callback cb;
    const char* tag = nullptr;
    std::uint32_t gen = 1;
    bool armed = false;  // a live (scheduled, uncancelled) event occupies it
    bool observer = false;
  };
  // What the priority queue actually sorts: 24 bytes, trivially copyable.
  struct HeapEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;  // insertion order, breaks ties deterministically
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  // A popped, about-to-run event (callback already moved out of the slab).
  struct Fired {
    SimTime when = 0;
    Callback cb;
    const char* tag = nullptr;
    bool observer = false;
  };

  static EventId MakeId(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  EventId ScheduleImpl(SimTime when, Callback cb, const char* tag,
                       bool observer);

  // Destroys the slot's callback, bumps its generation, and returns it to
  // the free list. `cb` must already have been moved out if it is about to
  // be invoked.
  void Release(Event& ev, std::uint32_t slot);

  // Pops the next live event into `out`. Returns false when idle.
  bool PopNext(Fired* out);

  // Advances the clock, bumps the executed count (component events only),
  // and invokes the callback — through the profiler when one is attached.
  void Dispatch(Fired& fired);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  DesProfiler* profiler_ = nullptr;
  // deque: stable references while callbacks schedule into a growing slab.
  std::deque<Event> slab_;
  std::vector<std::uint32_t> free_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> queue_;
};

}  // namespace fabricsim::sim
