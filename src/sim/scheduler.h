// Deterministic discrete-event scheduler with an optional conservative-PDES
// parallel engine.
//
// The scheduler is the heart of the simulation: every component (network
// links, CPU cores, protocol timers) enqueues callbacks at future simulated
// times and the scheduler executes them in a deterministic total order.
//
// ## Lanes and the deterministic total order
//
// Events are keyed by (time, lane, lane_seq): `lane` is the logical process
// the *scheduling context* belonged to, and `lane_seq` is that lane's
// monotone insertion counter. Lane 0 is the global/control lane (setup code,
// fault injection, samplers); Environment::AddMachine allocates one lane per
// simulated machine. A scheduler that never adds lanes degenerates to the
// classic (time, insertion-sequence) order. Because a lane's counter is
// advanced only by that lane's own execution, the key of every event is
// identical whether the run is serial or parallel — which is what makes the
// two engines produce byte-identical simulated output.
//
// Every event also carries an *execution* lane: the lane whose state the
// callback touches (for cross-lane sends — network deliveries — the sort key
// comes from the sender, the execution lane from the receiver). The serial
// engine ignores the distinction and runs one global key-ordered queue; the
// parallel engine partitions events by execution lane.
//
// ## Conservative parallel engine (SetParallel)
//
// Classic conservative PDES with static lookahead: the coordinator picks the
// global minimum next-event time T and runs every lane independently over
// the window [T, T + lookahead) on `threads` host threads (the calling
// thread doubles as worker 0; extra workers live on a runner::ThreadPool).
// Lookahead comes from the network's minimum cross-machine delivery latency
// (see Network::LookaheadFloor), so no in-window cross-lane message can be
// due inside the window that produced it. Cross-lane schedules append to
// single-producer mailboxes drained at the barrier; shared-state side
// effects registered via DeferShared are buffered per lane and applied at
// the barrier in exact key order. Any instant where the global lane has an
// event (fault injections, samplers) is executed as a *serial instant* — all
// lanes' events at exactly that time run on the coordinator in global key
// order — so control-lane effects interleave exactly as in the serial
// engine. Windows with no events are skipped by jumping T to the next event.
//
// Events live in per-lane slabs with free lists: each schedule reuses a
// recycled slot instead of heap-allocating per event, and the priority
// queues hold small POD entries. Slot generations make cancelled or
// recycled slots unambiguous.
//
// Two orthogonal extensions serve observability without disturbing results:
//
//  - Tags: ScheduleAt/ScheduleAfter accept an optional string-literal tag
//    naming the handler ("net/deliver", "raft/tick", ...) for the host-side
//    DesProfiler attached via SetProfiler (off by default).
//
//  - Observer events: ScheduleObserverAt/After enqueue callbacks that
//    dispatch in the normal deterministic order but are excluded from
//    ExecutedEvents(), so attaching observability never changes the
//    executed-event count that the bench regression gate compares.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace fabricsim::runner {
class ThreadPool;
}  // namespace fabricsim::runner

namespace fabricsim::sim {

class DesProfiler;

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Never zero for a live event (0 is a safe "no event" sentinel).
using EventId = std::uint64_t;

/// Discrete-event scheduler with cancellable events.
///
/// Serial by default and fully deterministic. Event callbacks may schedule
/// further events (including at the current time, which run after all
/// previously queued events for that time). With SetParallel(n > 1),
/// RunUntil executes lanes concurrently under the conservative-PDES engine;
/// all other entry points (Run, Step) stay serial.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// The control lane: setup code, fault injection, and samplers run here.
  static constexpr int kGlobalLane = 0;

  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Starts at zero. Under the parallel engine this
  /// is the calling lane's local clock (lanes inside one lookahead window
  /// advance independently); everywhere else the two are the same clock.
  [[nodiscard]] SimTime Now() const;

  // ------------------------------------------------------------------
  // Lanes
  // ------------------------------------------------------------------

  /// Allocates a new lane (logical process) and returns its id. Lane 0
  /// always exists. Must be called during setup, not from event callbacks.
  int AddLane();

  [[nodiscard]] int LaneCount() const { return static_cast<int>(lanes_.size()); }

  /// The lane of the current scheduling context: the executing event's lane
  /// during dispatch, or whatever the innermost LaneScope set during setup
  /// (lane 0 outside both).
  [[nodiscard]] int CurrentLane() const;

  /// RAII lane context for setup code: components constructed (and Start()ed)
  /// under a LaneScope schedule their events into that lane.
  class LaneScope {
   public:
    LaneScope(Scheduler& sched, int lane);
    ~LaneScope();
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

   private:
    const Scheduler* prev_sched_;
    int prev_lane_;
  };

  // ------------------------------------------------------------------
  // Scheduling
  // ------------------------------------------------------------------

  /// Schedules `cb` to run at absolute simulated time `when` in the current
  /// lane. Times in the past are clamped to `Now()` (the event runs next).
  /// `tag` must be a string literal (or otherwise outlive the scheduler);
  /// it names the handler in profiler output.
  EventId ScheduleAt(SimTime when, Callback cb, const char* tag = nullptr) {
    return ScheduleImpl(CurrentLane(), when, std::move(cb), tag,
                        /*observer=*/false);
  }

  /// Schedules `cb` to run `delay` after the current time.
  EventId ScheduleAfter(SimDuration delay, Callback cb,
                        const char* tag = nullptr) {
    return ScheduleAt(Now() + (delay < 0 ? 0 : delay), std::move(cb), tag);
  }

  /// Cross-lane scheduling: `cb` runs in `exec_lane`, ordered by the
  /// *current* context's (time, lane, seq) key — the sender's causal
  /// position. Under the parallel engine the event must respect the
  /// lookahead (network deliveries always do); the returned id is 0 there
  /// (mailbox entries are not cancellable).
  EventId ScheduleAtLane(int exec_lane, SimTime when, Callback cb,
                         const char* tag = nullptr);

  /// Observer variants: the callback dispatches in normal key order but does
  /// not count toward ExecutedEvents(). For pure samplers only — observer
  /// callbacks must not mutate simulation state.
  EventId ScheduleObserverAt(SimTime when, Callback cb,
                             const char* tag = nullptr) {
    return ScheduleImpl(CurrentLane(), when, std::move(cb), tag,
                        /*observer=*/true);
  }
  EventId ScheduleObserverAfter(SimDuration delay, Callback cb,
                                const char* tag = nullptr) {
    return ScheduleObserverAt(Now() + (delay < 0 ? 0 : delay), std::move(cb),
                              tag);
  }

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; cancelling a fired or unknown event is a harmless no-op.
  /// The callback is destroyed (captures released) immediately. Under the
  /// parallel engine an event may only be cancelled from its own lane (or
  /// at a barrier).
  bool Cancel(EventId id);

  // ------------------------------------------------------------------
  // Running
  // ------------------------------------------------------------------

  /// Runs events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed (observer events included).
  /// Always serial.
  std::uint64_t Run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with time <= `until`. After returning, `Now() == until`
  /// unless the queue emptied first (then Now() is the last event time).
  /// Returns the number of events executed. Uses the parallel engine when
  /// SetParallel configured more than one thread.
  std::uint64_t RunUntil(SimTime until);

  /// Executes exactly one event if any is pending. Returns false if idle.
  /// Always serial.
  bool Step();

  /// Number of events currently scheduled and not yet fired or cancelled.
  [[nodiscard]] std::size_t PendingEvents() const;

  /// Total number of component events executed since construction. Observer
  /// events are excluded, so this count is invariant under attached
  /// observability and is compared bit-exactly by the bench gate.
  [[nodiscard]] std::uint64_t ExecutedEvents() const;

  // ------------------------------------------------------------------
  // Parallel engine configuration
  // ------------------------------------------------------------------

  /// Configures the conservative-PDES engine: `threads` host threads (the
  /// calling thread included) execute lanes in lookahead-sized windows
  /// during RunUntil. `threads <= 1` (the default) keeps the exact serial
  /// path. `lookahead` must be positive — use the network's
  /// LookaheadFloor(). Simulated output is byte-identical at any thread
  /// count; see DESIGN.md "Conservative PDES" for the argument.
  void SetParallel(int threads, SimDuration lookahead);

  [[nodiscard]] int ParallelThreads() const { return threads_; }
  [[nodiscard]] SimDuration Lookahead() const { return lookahead_; }

  /// Number of parallel windows executed so far (0 on serial runs) and
  /// serial instants taken for global-lane events — host-side diagnostics
  /// for the pdes_speedup bench.
  [[nodiscard]] std::uint64_t WindowsRun() const { return windows_; }
  [[nodiscard]] std::uint64_t SerialInstants() const { return instants_; }

  /// True while the caller is inside a parallel window on a lane thread —
  /// the signal for shared-state mutators (TxTracker) to defer their side
  /// effects through DeferShared instead of applying them directly.
  [[nodiscard]] bool Deferring() const;

  /// Buffers `op` (a side effect on state shared across lanes) stamped with
  /// the executing event's key; all buffered ops are applied at the next
  /// window barrier in exact global key order — the order the serial engine
  /// would have applied them in. Outside a parallel window, runs `op`
  /// immediately.
  void DeferShared(std::function<void()> op);

  // ------------------------------------------------------------------
  // Introspection / profiling
  // ------------------------------------------------------------------

  /// Attaches (or detaches, with nullptr) the host-time profiler. The
  /// profiler must outlive its attachment. When detached — the default —
  /// dispatch pays one predictable branch. Under the parallel engine each
  /// worker collects into a private profiler, merged into the attached one
  /// at the end of RunUntil.
  void SetProfiler(DesProfiler* profiler) { profiler_ = profiler; }

  /// Pool introspection (tests): total slots ever created, and how many are
  /// currently on the free list, summed over lanes. Capacity grows to the
  /// high-water mark of concurrently pending events and is then reused.
  [[nodiscard]] std::size_t PoolCapacity() const;
  [[nodiscard]] std::size_t PoolFree() const;

 private:
  // One pooled event slot. `gen` is bumped every time the slot is released
  // (fired or cancelled), so stale heap entries and stale EventIds referring
  // to a recycled slot can never match again.
  struct Event {
    Callback cb;
    const char* tag = nullptr;
    std::uint32_t gen = 1;
    bool armed = false;  // a live (scheduled, uncancelled) event occupies it
    bool observer = false;
  };
  // What the priority queues actually sort: 32 bytes, trivially copyable.
  // (sort_lane, seq) is the deterministic tie-break at equal times;
  // exec_lane names the slab the slot lives in.
  struct HeapEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;  // per-sort-lane insertion order
    std::int32_t sort_lane = 0;
    std::int32_t exec_lane = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.sort_lane != b.sort_lane) return a.sort_lane > b.sort_lane;
      return a.seq > b.seq;
    }
  };
  using LaneQueue = std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later>;
  // A popped, about-to-run event (callback already moved out of the slab).
  struct Fired {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::int32_t sort_lane = 0;
    std::int32_t exec_lane = 0;
    Callback cb;
    const char* tag = nullptr;
    bool observer = false;
  };
  // A cross-lane schedule buffered until the window barrier. Carries the
  // sender's sort key; the slab slot is allocated in the target lane at
  // drain time.
  struct MailEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::int32_t sort_lane = 0;
    Callback cb;
    const char* tag = nullptr;
  };
  // A deferred shared-state side effect, stamped with its event's key plus
  // a per-lane sub-counter (call order within one event).
  struct DeferredOp {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::int32_t sort_lane = 0;
    std::uint64_t sub = 0;
    std::function<void()> op;
  };

  // Per-lane state. Padded so concurrently executing lanes never share a
  // cache line through the hot counters.
  struct alignas(64) Lane {
    SimTime now = 0;            // lane-local clock (parallel engine)
    std::uint64_t next_seq = 0; // sort-key counter, advanced by this lane only
    std::uint64_t executed = 0;   // component events dispatched here
    std::uint64_t dispatched = 0; // all events (observer included)
    std::size_t live = 0;
    std::deque<Event> slab;  // deque: stable refs while callbacks schedule
    std::vector<std::uint32_t> free;
    LaneQueue queue;  // parallel engine only; serial uses queue_
    std::vector<std::vector<MailEntry>> outbox;  // by target lane
    std::vector<int> out_touched;  // target lanes with a non-empty outbox
    std::vector<DeferredOp> ops;
    std::uint64_t op_sub = 0;
    // The executing event's sort key (valid during dispatch on this lane).
    SimTime cur_when = 0;
    std::uint64_t cur_seq = 0;
    std::int32_t cur_sort_lane = 0;
  };

  // EventId layout: [exec_lane:12][gen:24][slot:28]. Generation comparison
  // through an id uses the low 24 bits (heap entries keep all 32).
  static constexpr int kLaneBits = 12;
  static constexpr int kGenBits = 24;
  static constexpr int kSlotBits = 28;
  static EventId MakeId(int lane, std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(static_cast<std::uint32_t>(lane))
            << (kGenBits + kSlotBits)) |
           (static_cast<EventId>(gen & ((1u << kGenBits) - 1)) << kSlotBits) |
           slot;
  }

  EventId ScheduleImpl(int exec_lane, SimTime when, Callback cb,
                       const char* tag, bool observer);
  std::uint32_t Grab(Lane& lane, Callback cb, const char* tag, bool observer);
  void Release(Lane& lane, Event& ev, std::uint32_t slot);
  bool PopNext(Fired* out);  // serial global queue
  // Writes `lane`'s next live entry without popping it (stale entries are
  // dropped along the way); false when the lane queue is empty.
  bool PeekLane(Lane& lane, HeapEntry* out);
  void Dispatch(Fired& fired);  // serial dispatch (global clock)
  std::uint64_t RunUntilSerial(SimTime until);
  std::uint64_t RunUntilParallel(SimTime until);
  [[nodiscard]] std::uint64_t TotalDispatched() const;

  // Parallel-engine helpers (see scheduler.cpp).
  void EnterParallel();
  void ExitParallel();
  void WorkerLoop(int w);  // persistent per-worker barrier loop
  // Runs every lane's events at exactly time `t` on the calling thread in
  // global key order (the serial engine, restricted to one instant).
  void RunInstant(SimTime t);
  // Runs one lane's events with when < win_end (worker body).
  void RunLaneWindow(int lane_index, SimTime win_end, DesProfiler* prof);
  void DrainMailboxes();
  void FlushDeferredOps();

  SimTime now_ = 0;  // serial clock
  DesProfiler* profiler_ = nullptr;
  std::deque<Lane> lanes_;  // deque: stable references, lane 0 always exists
  LaneQueue queue_;         // serial engine's single global queue

  // Parallel engine.
  int threads_ = 1;
  SimDuration lookahead_ = 0;
  bool parallel_active_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t instants_ = 0;
  SimTime win_end_ = 0;  // published to workers by the epoch release
  std::unique_ptr<runner::ThreadPool> pool_;
  std::vector<std::vector<int>> worker_lanes_;  // lanes per worker index
  std::vector<std::unique_ptr<DesProfiler>> worker_profilers_;
  std::vector<DeferredOp> scratch_ops_;  // barrier-flush scratch
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> remaining_{0};
  std::atomic<bool> stop_workers_{false};
};

}  // namespace fabricsim::sim
