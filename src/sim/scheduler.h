// Deterministic discrete-event scheduler.
//
// The scheduler is the heart of the simulation: every component (network
// links, CPU cores, protocol timers) enqueues callbacks at future simulated
// times and the scheduler executes them in (time, insertion-sequence) order.
// Ties on time break by insertion order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace fabricsim::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// Discrete-event scheduler with cancellable events.
///
/// Not thread-safe by design: the whole simulation is single-threaded and
/// deterministic. Event callbacks may schedule further events (including at
/// the current time, which run after all previously queued events for that
/// time).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Starts at zero.
  [[nodiscard]] SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute simulated time `when`.
  /// Times in the past are clamped to `Now()` (the event runs next).
  EventId ScheduleAt(SimTime when, Callback cb);

  /// Schedules `cb` to run `delay` after the current time.
  EventId ScheduleAfter(SimDuration delay, Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; cancelling a fired or unknown event is a harmless no-op.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::uint64_t Run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with time <= `until`. After returning, `Now() == until`
  /// unless the queue emptied first (then Now() is the last event time).
  /// Returns the number of events executed.
  std::uint64_t RunUntil(SimTime until);

  /// Executes exactly one event if any is pending. Returns false if idle.
  bool Step();

  /// Number of events currently scheduled and not yet fired or cancelled.
  [[nodiscard]] std::size_t PendingEvents() const { return pending_.size(); }

  /// Total number of events executed since construction.
  [[nodiscard]] std::uint64_t ExecutedEvents() const { return executed_; }

 private:
  struct Entry {
    SimTime when = 0;
    std::uint64_t seq = 0;  // insertion order, breaks ties deterministically
    EventId id = 0;
    // Heap entries are moved around; callback stored via shared ownership so
    // the struct stays cheaply movable and copyable for priority_queue.
    std::shared_ptr<Callback> cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool PopNext(Entry& out);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Ids of events that are scheduled and not yet fired or cancelled.
  // Popped entries absent from this set were cancelled and are skipped.
  std::unordered_set<EventId> pending_;
};

}  // namespace fabricsim::sim
