// Deterministic random-number generation for the simulation.
//
// Uses xoshiro256++ seeded by SplitMix64, so runs are reproducible from a
// single 64-bit seed. The simulation never consults wall-clock entropy.
#pragma once

#include <array>
#include <cstdint>

namespace fabricsim::sim {

/// xoshiro256++ pseudo-random generator with distribution helpers.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  /// Used for Poisson-process inter-arrival times.
  double NextExponential(double mean);

  /// Normally distributed value (Box-Muller), mean `mu`, std-dev `sigma`.
  double NextGaussian(double mu, double sigma);

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Forks an independent, deterministically derived child generator.
  /// Children seeded from distinct streams do not correlate with the parent.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace fabricsim::sim
