// Multi-core CPU resource model.
//
// A `Cpu` models a machine's processor as `cores` identical servers in front
// of a single FIFO queue (an M/G/c station). Components submit jobs with a
// nominal CPU cost in nanoseconds of core time; the cost is scaled by the
// machine's speed factor (slower machines take proportionally longer).
// The paper's cluster mixes i7-2600 (fast) and i7-920 (slow) machines, which
// the speed factor captures.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/scheduler.h"
#include "sim/time.h"

namespace fabricsim::sim {

class Cpu;

/// Observer hook for per-job telemetry. The CPU stays ignorant of who is
/// listening (the obs layer registers itself); all callbacks fire
/// synchronously inside the CPU's own bookkeeping, so observers must not
/// submit work from them.
class CpuObserver {
 public:
  virtual ~CpuObserver() = default;
  /// A job entered the queue or went straight to a core.
  virtual void OnJobSubmitted(const Cpu& cpu) { (void)cpu; }
  /// A job left the queue for a core after waiting `queued` ns.
  virtual void OnJobStarted(const Cpu& cpu, SimDuration queued) {
    (void)cpu;
    (void)queued;
  }
  /// A job finished after `service` ns of core time (speed-scaled).
  virtual void OnJobFinished(const Cpu& cpu, SimDuration service) {
    (void)cpu;
    (void)service;
  }
};

/// A multi-core FIFO CPU station attached to a scheduler.
class Cpu {
 public:
  using Completion = std::function<void()>;

  /// `cores` >= 1; `speed_factor` scales job durations (1.0 = nominal,
  /// 0.8 = runs at 80% speed, i.e. jobs take 1/0.8 of nominal time).
  Cpu(Scheduler& sched, int cores, double speed_factor = 1.0);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Submits a job costing `cost` nanoseconds of nominal core time.
  /// `done` runs when the job completes. Zero/negative costs complete after
  /// being serviced by a core with zero duration (still FIFO-ordered).
  /// `high_priority` jobs (the interactive RPC path, e.g. endorsement)
  /// bypass queued normal-priority work (background validation).
  void Submit(SimDuration cost, Completion done, bool high_priority = false);

  /// Number of jobs currently queued (excluding the ones running on cores).
  [[nodiscard]] std::size_t QueueLength() const {
    return queue_.size() + high_queue_.size();
  }

  /// Number of cores currently busy.
  [[nodiscard]] int BusyCores() const { return busy_cores_; }

  [[nodiscard]] int Cores() const { return cores_; }

  /// The wall duration a job of nominal cost `cost` occupies a core for
  /// (speed-factor scaled) — what Submit charges.
  [[nodiscard]] SimDuration ScaledCost(SimDuration cost) const;

  /// Current speed factor (1.0 = nominal).
  [[nodiscard]] double SpeedFactor() const { return 1.0 / inv_speed_; }

  /// Changes the speed factor at runtime (transient slowdown injection).
  /// Jobs already running keep their original duration; jobs started after
  /// the call are scaled by the new factor.
  void SetSpeedFactor(double speed_factor);

  /// Total core-busy time accrued up to the current simulated time.
  [[nodiscard]] SimDuration BusyTime() const { return BusyTimeAt(sched_.Now()); }

  /// Core-busy time accrued in [0, t] for any t <= now (exact: the CPU keeps
  /// a compact history of busy-core transitions).
  [[nodiscard]] SimDuration BusyTimeAt(SimTime t) const;

  /// Utilization in [0,1] over the window [0, now].
  [[nodiscard]] double Utilization() const;

  /// Utilization in [0,1] over the window [t0, t1] (t1 <= now), so reports
  /// can exclude warm-up exactly like TxTracker::BuildReport does.
  [[nodiscard]] double Utilization(SimTime t0, SimTime t1) const;

  /// Total jobs completed.
  [[nodiscard]] std::uint64_t CompletedJobs() const { return completed_; }

  /// Registers (or clears, with nullptr) the telemetry observer.
  void SetObserver(CpuObserver* observer) { observer_ = observer; }

  /// Bounded-memory mode: stop recording the busy-core transition history
  /// (two marks per job, forever — the one per-job allocation left once the
  /// TxTracker streams). Running totals (BusyTime(), Utilization() to now,
  /// BusyCores()) stay exact; only PAST-time queries (BusyTimeAt(t) /
  /// Utilization(t0, t1) with t < now) need the history, and the sole such
  /// caller — attribution — is mutually exclusive with streaming runs.
  /// Already-recorded marks are kept, so past queries up to the switch-on
  /// point remain exact.
  void SetBoundedMarks(bool on) { bounded_marks_ = on; }

 private:
  struct Job {
    SimDuration cost;
    Completion done;
    SimTime enqueued_at = 0;
  };
  /// One busy-core transition: cumulative busy time up to `t`, and the
  /// number of busy cores from `t` onward.
  struct BusyMark {
    SimTime t;
    SimDuration cum;
    int busy;
  };

  void StartJob(Job job);
  void OnJobDone(Completion done, SimDuration service);
  void AccrueBusyTime();

  Scheduler& sched_;
  int cores_;
  double inv_speed_;
  int busy_cores_ = 0;
  std::uint64_t completed_ = 0;
  std::deque<Job> queue_;
  std::deque<Job> high_queue_;
  CpuObserver* observer_ = nullptr;

  // Busy-time accrual: cum_busy_ is exact as of last_change_; between marks
  // the busy-core count is constant, so BusyTimeAt interpolates exactly.
  SimDuration cum_busy_ = 0;
  SimTime last_change_ = 0;
  bool bounded_marks_ = false;
  std::vector<BusyMark> marks_;
};

}  // namespace fabricsim::sim
