// Multi-core CPU resource model.
//
// A `Cpu` models a machine's processor as `cores` identical servers in front
// of a single FIFO queue (an M/G/c station). Components submit jobs with a
// nominal CPU cost in nanoseconds of core time; the cost is scaled by the
// machine's speed factor (slower machines take proportionally longer).
// The paper's cluster mixes i7-2600 (fast) and i7-920 (slow) machines, which
// the speed factor captures.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/scheduler.h"
#include "sim/time.h"

namespace fabricsim::sim {

/// A multi-core FIFO CPU station attached to a scheduler.
class Cpu {
 public:
  using Completion = std::function<void()>;

  /// `cores` >= 1; `speed_factor` scales job durations (1.0 = nominal,
  /// 0.8 = runs at 80% speed, i.e. jobs take 1/0.8 of nominal time).
  Cpu(Scheduler& sched, int cores, double speed_factor = 1.0);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Submits a job costing `cost` nanoseconds of nominal core time.
  /// `done` runs when the job completes. Zero/negative costs complete after
  /// being serviced by a core with zero duration (still FIFO-ordered).
  /// `high_priority` jobs (the interactive RPC path, e.g. endorsement)
  /// bypass queued normal-priority work (background validation).
  void Submit(SimDuration cost, Completion done, bool high_priority = false);

  /// Number of jobs currently queued (excluding the ones running on cores).
  [[nodiscard]] std::size_t QueueLength() const {
    return queue_.size() + high_queue_.size();
  }

  /// Number of cores currently busy.
  [[nodiscard]] int BusyCores() const { return busy_cores_; }

  [[nodiscard]] int Cores() const { return cores_; }

  /// Total core-busy time accumulated, for utilization reporting.
  [[nodiscard]] SimDuration BusyTime() const { return busy_time_; }

  /// Utilization in [0,1] over the window [0, now].
  [[nodiscard]] double Utilization() const;

  /// Total jobs completed.
  [[nodiscard]] std::uint64_t CompletedJobs() const { return completed_; }

 private:
  struct Job {
    SimDuration cost;
    Completion done;
  };

  void StartJob(Job job);
  void OnJobDone(Completion done);

  Scheduler& sched_;
  int cores_;
  double inv_speed_;
  int busy_cores_ = 0;
  SimDuration busy_time_ = 0;
  std::uint64_t completed_ = 0;
  std::deque<Job> queue_;
  std::deque<Job> high_queue_;
};

}  // namespace fabricsim::sim
