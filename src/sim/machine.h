// Simulated machines and the simulation environment.
//
// A `Machine` is a physical host: a named CPU station with a core count and
// a relative speed factor. The paper's cluster mixes two machine types
// (i7-2600 @3.4 GHz and i7-920 @2.67 GHz); both profiles are provided.
// `Environment` bundles the scheduler, RNG, network, and machines that one
// simulation run owns.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace fabricsim::obs {
class Tracer;
}  // namespace fabricsim::obs

namespace fabricsim::sim {

/// Static description of a host type.
struct MachineProfile {
  std::string model;
  int cores = 4;
  double speed_factor = 1.0;  // relative to the i7-2600 baseline
};

/// Intel Core i7-2600 @ 3.40 GHz (the paper's faster machines; orderers and
/// endorsing peers were preferentially placed on these).
MachineProfile I7_2600();

/// Intel Core i7-920 @ 2.67 GHz (the paper's slower machines).
MachineProfile I7_920();

/// One simulated host: a CPU plus identity. Roles (peer, orderer, client,
/// broker) are processes that submit work to the machine's CPU. Each machine
/// is one scheduler lane (logical process) for the conservative-PDES engine;
/// components belonging to the machine are constructed and started under a
/// `Scheduler::LaneScope` for its lane so their events execute there.
class Machine {
 public:
  Machine(Scheduler& sched, std::string name, MachineProfile profile,
          int lane = Scheduler::kGlobalLane)
      : name_(std::move(name)),
        profile_(std::move(profile)),
        lane_(lane),
        cpu_(sched, profile_.cores, profile_.speed_factor) {}

  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] const MachineProfile& Profile() const { return profile_; }
  [[nodiscard]] int Lane() const { return lane_; }
  [[nodiscard]] Cpu& GetCpu() { return cpu_; }
  [[nodiscard]] const Cpu& GetCpu() const { return cpu_; }

 private:
  std::string name_;
  MachineProfile profile_;
  int lane_;
  Cpu cpu_;
};

/// Everything one simulation run owns. Components hold references into the
/// environment; the environment must outlive them.
class Environment {
 public:
  explicit Environment(std::uint64_t seed, NetworkConfig net_config = {});

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  [[nodiscard]] Scheduler& Sched() { return sched_; }
  [[nodiscard]] const Scheduler& Sched() const { return sched_; }
  [[nodiscard]] Network& Net() { return *net_; }
  [[nodiscard]] const Network& Net() const { return *net_; }
  [[nodiscard]] Rng& GlobalRng() { return rng_; }

  /// Creates a machine owned by the environment on a fresh scheduler lane.
  /// Pass an existing machine's lane as `share_lane_with` to co-locate (the
  /// ZooKeeper ensemble object spans its three hosts, so those machines form
  /// one logical process).
  Machine& AddMachine(std::string name, MachineProfile profile,
                      int share_lane_with = -1);

  [[nodiscard]] std::size_t MachineCount() const { return machines_.size(); }
  [[nodiscard]] Machine& MachineAt(std::size_t i) { return *machines_.at(i); }

  /// Derives an independent RNG stream (for per-component determinism).
  Rng ForkRng() { return rng_.Fork(); }

  [[nodiscard]] SimTime Now() const { return sched_.Now(); }

  /// Attaches a span tracer (nullptr detaches). The environment does not own
  /// it. When no tracer is attached, Trace() returns nullptr and every
  /// instrumentation site is a single branch — the simulation is unaffected.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* Trace() const { return tracer_; }

 private:
  Scheduler sched_;
  Rng rng_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<Machine>> machines_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace fabricsim::sim
