#include "sim/machine.h"

namespace fabricsim::sim {

MachineProfile I7_2600() {
  // 4 physical cores @ 3.40 GHz; baseline speed.
  return MachineProfile{"Intel(R) Core(TM) i7-2600 @ 3.40GHz", 4, 1.0};
}

MachineProfile I7_920() {
  // 4 physical cores @ 2.67 GHz; also an older microarchitecture, so its
  // effective per-core speed relative to the i7-2600 is below the pure
  // clock ratio (2.67/3.40 = 0.785).
  return MachineProfile{"Intel(R) Core(TM) i7 CPU 920 @ 2.67GHz", 4, 0.70};
}

Environment::Environment(std::uint64_t seed, NetworkConfig net_config)
    : rng_(seed) {
  net_ = std::make_unique<Network>(sched_, rng_.Fork(), net_config);
}

Machine& Environment::AddMachine(std::string name, MachineProfile profile,
                                 int share_lane_with) {
  const int lane = (share_lane_with >= 0 && share_lane_with < sched_.LaneCount())
                       ? share_lane_with
                       : sched_.AddLane();
  machines_.push_back(std::make_unique<Machine>(sched_, std::move(name),
                                                std::move(profile), lane));
  return *machines_.back();
}

}  // namespace fabricsim::sim
