// Simulated switched Ethernet network.
//
// Models the paper's testbed: a 1 Gbps switched LAN with TLS on every
// connection. Each ordered pair of nodes has an independent link whose
// transfer time is propagation latency + serialization (size/bandwidth) +
// jitter. Serialization is modeled per sender NIC: a sender's outgoing
// messages share the NIC, so a burst queues behind itself, while messages
// from different senders do not interfere (switched network, full duplex).
//
// Fault injection (message loss and partitions) is built in so tests can
// exercise Raft/Kafka failure paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace fabricsim::sim {

/// Identifies a network endpoint (one per simulated process/machine role).
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Base class for all simulated wire messages. Concrete protocols subclass
/// this; receivers downcast with std::dynamic_pointer_cast.
class Message {
 public:
  virtual ~Message() = default;
  /// Payload size in bytes as it would appear on the wire (pre-TLS framing).
  [[nodiscard]] virtual std::size_t WireSize() const = 0;
  /// Human-readable type tag for logs.
  [[nodiscard]] virtual std::string TypeName() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Observer hook for network telemetry (bytes-in-flight tracking). Fires
/// synchronously from Network bookkeeping; observers must not send messages
/// from the callbacks. Only messages that actually make it onto the wire are
/// reported to OnSend; send-time drops (crash/partition/loss) never count.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  /// `wire_bytes` includes framing overhead; `deliver_at` is when the
  /// receiver's handler will run.
  virtual void OnSend(NodeId from, NodeId to, std::size_t wire_bytes,
                      SimTime deliver_at) {
    (void)from, (void)to, (void)wire_bytes, (void)deliver_at;
  }
  virtual void OnDeliver(NodeId from, NodeId to, std::size_t wire_bytes) {
    (void)from, (void)to, (void)wire_bytes;
  }
  /// A scheduled message was dropped at delivery time (receiver crashed).
  virtual void OnDrop(NodeId from, NodeId to, std::size_t wire_bytes) {
    (void)from, (void)to, (void)wire_bytes;
  }
};

/// Static link parameters.
struct NetworkConfig {
  SimDuration base_latency = FromMicros(180);  // LAN RTT/2 incl. kernel+TLS
  double jitter_fraction = 0.10;               // +/- uniform jitter on latency
  double bandwidth_bps = 1e9;                  // 1 Gbps
  std::size_t per_message_overhead_bytes = 120;  // TCP/IP + TLS record framing
  double loss_probability = 0.0;               // applied per message
};

/// The simulated network fabric connecting all nodes.
class Network {
 public:
  using Handler = std::function<void(NodeId from, MessagePtr msg)>;

  Network(Scheduler& sched, Rng rng, NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a new endpoint and returns its id.
  NodeId Register(std::string name, Handler handler);

  /// Replaces the handler for an existing endpoint (used when a node restarts).
  void SetHandler(NodeId id, Handler handler);

  /// Sends `msg` from `from` to `to`. Delivery is asynchronous via the
  /// receiver's handler; lost/partitioned messages vanish silently, like UDP.
  /// (Protocols that need reliability — all of ours — use timeouts/retries or
  /// run over an abstraction that retransmits.)
  void Send(NodeId from, NodeId to, MessagePtr msg);

  /// Self-sends are delivered with negligible loopback delay and no loss.
  /// Everything still goes through the scheduler, preserving asynchrony.

  /// Cuts connectivity between the two nodes, both directions.
  void Partition(NodeId a, NodeId b);

  /// Restores connectivity between the two nodes.
  void Heal(NodeId a, NodeId b);

  /// Heals all partitions.
  void HealAll();

  /// True if a->b traffic is currently blocked.
  [[nodiscard]] bool IsPartitioned(NodeId a, NodeId b) const;

  /// Marks a node as crashed: all traffic to/from it is dropped until revived.
  void Crash(NodeId id);
  void Revive(NodeId id);
  [[nodiscard]] bool IsCrashed(NodeId id) const;

  [[nodiscard]] const std::string& NameOf(NodeId id) const;
  [[nodiscard]] std::size_t NodeCount() const { return nodes_.size(); }

  /// Totals for reporting. Counters are atomic (relaxed) because endpoints
  /// on different lanes update them concurrently under the PDES engine; the
  /// final values are order-independent sums, so they stay deterministic.
  [[nodiscard]] std::uint64_t MessagesSent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t MessagesDelivered() const {
    return messages_delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t MessagesDropped() const {
    return messages_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t BytesSent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const NetworkConfig& Config() const { return config_; }

  /// Adjusts the per-message loss probability at runtime (fault windows).
  /// Applies to messages sent after the call; in-flight messages are kept.
  void SetLossProbability(double p);

  /// Current simulated time (convenience for senders stamping messages).
  [[nodiscard]] SimTime Now() const { return sched_.Now(); }

  /// Registers (or clears, with nullptr) the telemetry observer.
  void SetObserver(NetworkObserver* observer) { observer_ = observer; }

  /// The scheduler lane of an endpoint (the lane active when it was
  /// registered — its machine's logical process).
  [[nodiscard]] int LaneOf(NodeId id) const {
    return nodes_.at(static_cast<std::size_t>(id)).lane;
  }

  /// Conservative-PDES static lookahead: a lower bound on the delay of any
  /// cross-node message. Every delivery time is at least
  /// minimum-serialization (framing overhead over the link bandwidth) plus
  /// minimum propagation latency (base latency at the lowest jitter draw)
  /// after its send; the per-connection FIFO clamp only pushes deliveries
  /// later. Loopback is faster but intra-lane, so it does not bound the
  /// lookahead. With defaults (120 B overhead, 1 Gbps, 180 us +/- 10%) this
  /// is ~163 us.
  [[nodiscard]] SimDuration LookaheadFloor() const;

 private:
  struct Endpoint {
    std::string name;
    Handler handler;
    SimTime nic_free_at = 0;  // sender-side serialization queue
    bool crashed = false;
    int lane = Scheduler::kGlobalLane;
    // Per-destination sender-owned state, indexed by destination NodeId and
    // grown on first use. Keeping it on the sender (instead of network-wide
    // maps) makes the send path lane-local under the PDES engine.
    //
    // FIFO floor: connections are stream-oriented (gRPC over TCP), so
    // delivery within one directed pair never reorders even when latency
    // jitter would.
    std::vector<SimTime> last_to;
    // Per-directed-pair RNG streams for loss and jitter draws. Seeded from
    // (link_seed_base_, from, to) only, so the draw sequence on one link is
    // independent of traffic on every other link — this is what keeps
    // results identical when lanes execute in different host orders.
    std::vector<std::optional<Rng>> link_rng;
  };

  static std::uint64_t PairKey(NodeId a, NodeId b);
  Rng& LinkRng(Endpoint& src, NodeId from, NodeId to);

  Scheduler& sched_;
  Rng rng_;
  std::uint64_t link_seed_base_;
  NetworkConfig config_;
  std::vector<Endpoint> nodes_;
  std::unordered_set<std::uint64_t> partitions_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  NetworkObserver* observer_ = nullptr;
};

}  // namespace fabricsim::sim
