#ifndef FABRICSIM_SIM_ADMISSION_H_
#define FABRICSIM_SIM_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

namespace fabricsim::sim {

/// What a bounded ingress queue does with new work once it is full.
enum class OverloadPolicy : std::uint8_t {
  /// Shed the newcomer immediately (load shedding with an explicit nack).
  kReject = 0,
  /// Queue the newcomer and shed the oldest waiting item instead.
  kDropOldest = 1,
  /// Queue the newcomer; overflow past the waiting bound is dropped
  /// silently, modelling transport backpressure where the sender's own
  /// timeout machinery surfaces the terminal status.
  kBlock = 2,
};

inline const char* OverloadPolicyName(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kReject: return "reject";
    case OverloadPolicy::kDropOldest: return "drop-oldest";
    case OverloadPolicy::kBlock: return "block";
  }
  return "?";
}

/// Knobs for one bounded ingress queue.
struct AdmissionConfig {
  bool enabled = false;
  /// Items being actively serviced (in the pipeline) at once.
  std::size_t max_inflight = 64;
  /// Items parked behind the inflight set awaiting a free slot.
  std::size_t max_waiting = 256;
  OverloadPolicy policy = OverloadPolicy::kReject;
};

/// A bounded two-stage ingress queue: up to `max_inflight` items are
/// admitted for service, up to `max_waiting` more wait behind them, and
/// anything beyond that is shed according to the policy. Disabled queues
/// admit everything (unbounded), preserving legacy behavior.
template <typename Item>
class AdmissionQueue {
 public:
  struct OfferResult {
    /// Set when the offered item may start service right now.
    std::optional<Item> admit;
    /// Items the queue shed as a consequence of this offer (the offered
    /// item itself under kReject; displaced items under kDropOldest;
    /// silent overflow under kBlock — the caller decides whether shed
    /// items get a nack or vanish).
    std::vector<Item> shed;
  };

  AdmissionQueue() = default;
  explicit AdmissionQueue(const AdmissionConfig& config) : config_(config) {}

  void Configure(const AdmissionConfig& config) { config_ = config; }
  const AdmissionConfig& Config() const { return config_; }

  /// Offers one item. Either it is admitted for immediate service, parked
  /// in the waiting room, or shed (possibly displacing older work).
  OfferResult Offer(Item item) {
    OfferResult out;
    if (!config_.enabled) {
      ++inflight_;
      ++admitted_total_;
      NoteDepth();
      out.admit = std::move(item);
      return out;
    }
    if (inflight_ < config_.max_inflight && waiting_.empty()) {
      ++inflight_;
      ++admitted_total_;
      NoteDepth();
      out.admit = std::move(item);
      return out;
    }
    switch (config_.policy) {
      case OverloadPolicy::kReject:
        if (waiting_.size() < config_.max_waiting) {
          waiting_.push_back(std::move(item));
        } else {
          ++shed_total_;
          out.shed.push_back(std::move(item));
        }
        break;
      case OverloadPolicy::kDropOldest:
        waiting_.push_back(std::move(item));
        while (waiting_.size() > config_.max_waiting) {
          ++shed_total_;
          out.shed.push_back(std::move(waiting_.front()));
          waiting_.pop_front();
        }
        break;
      case OverloadPolicy::kBlock:
        if (waiting_.size() < config_.max_waiting) {
          waiting_.push_back(std::move(item));
        } else {
          ++shed_total_;
          out.shed.push_back(std::move(item));
        }
        break;
    }
    NoteDepth();
    return out;
  }

  /// Frees one inflight slot. Returns the next waiting item, which the
  /// caller must begin servicing (its slot is already accounted for).
  std::optional<Item> Release() {
    if (inflight_ > 0) --inflight_;
    if (config_.enabled && !waiting_.empty() &&
        inflight_ < config_.max_inflight) {
      Item next = std::move(waiting_.front());
      waiting_.pop_front();
      ++inflight_;
      ++admitted_total_;
      return next;
    }
    return std::nullopt;
  }

  std::size_t Inflight() const { return inflight_; }
  std::size_t Waiting() const { return waiting_.size(); }
  std::size_t Depth() const { return inflight_ + waiting_.size(); }
  /// Peak Depth() ever observed — how close the queue came to its bound,
  /// even between telemetry samples.
  std::size_t DepthHighWatermark() const { return depth_hwm_; }
  std::uint64_t AdmittedTotal() const { return admitted_total_; }
  std::uint64_t ShedTotal() const { return shed_total_; }

 private:
  void NoteDepth() {
    const std::size_t d = Depth();
    if (d > depth_hwm_) depth_hwm_ = d;
  }

  AdmissionConfig config_;
  std::deque<Item> waiting_;
  std::size_t inflight_ = 0;
  std::size_t depth_hwm_ = 0;
  std::uint64_t admitted_total_ = 0;
  std::uint64_t shed_total_ = 0;
};

}  // namespace fabricsim::sim

#endif  // FABRICSIM_SIM_ADMISSION_H_
