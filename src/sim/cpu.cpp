#include "sim/cpu.h"

#include <cassert>
#include <utility>

namespace fabricsim::sim {

Cpu::Cpu(Scheduler& sched, int cores, double speed_factor)
    : sched_(sched),
      cores_(cores < 1 ? 1 : cores),
      inv_speed_(speed_factor > 0 ? 1.0 / speed_factor : 1.0) {}

void Cpu::Submit(SimDuration cost, Completion done, bool high_priority) {
  Job job{cost < 0 ? 0 : cost, std::move(done)};
  if (busy_cores_ < cores_) {
    StartJob(std::move(job));
  } else if (high_priority) {
    high_queue_.push_back(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

void Cpu::StartJob(Job job) {
  ++busy_cores_;
  const auto scaled =
      static_cast<SimDuration>(static_cast<double>(job.cost) * inv_speed_);
  busy_time_ += scaled;
  sched_.ScheduleAfter(scaled,
                       [this, done = std::move(job.done)]() mutable {
                         OnJobDone(std::move(done));
                       });
}

void Cpu::OnJobDone(Completion done) {
  --busy_cores_;
  ++completed_;
  // Start the next queued job before running the completion so that a
  // completion which submits new work queues behind already-waiting jobs.
  if (!high_queue_.empty()) {
    Job next = std::move(high_queue_.front());
    high_queue_.pop_front();
    StartJob(std::move(next));
  } else if (!queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(next));
  }
  if (done) done();
}

double Cpu::Utilization() const {
  const SimTime now = sched_.Now();
  if (now <= 0) return 0.0;
  const double capacity = static_cast<double>(now) * cores_;
  double used = static_cast<double>(busy_time_);
  return used > capacity ? 1.0 : used / capacity;
}

}  // namespace fabricsim::sim
