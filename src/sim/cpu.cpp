#include "sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace fabricsim::sim {

Cpu::Cpu(Scheduler& sched, int cores, double speed_factor)
    : sched_(sched),
      cores_(cores < 1 ? 1 : cores),
      inv_speed_(speed_factor > 0 ? 1.0 / speed_factor : 1.0) {}

void Cpu::SetSpeedFactor(double speed_factor) {
  inv_speed_ = speed_factor > 0 ? 1.0 / speed_factor : 1.0;
}

SimDuration Cpu::ScaledCost(SimDuration cost) const {
  if (cost < 0) cost = 0;
  return static_cast<SimDuration>(static_cast<double>(cost) * inv_speed_);
}

void Cpu::Submit(SimDuration cost, Completion done, bool high_priority) {
  Job job{cost < 0 ? 0 : cost, std::move(done), sched_.Now()};
  if (observer_) observer_->OnJobSubmitted(*this);
  if (busy_cores_ < cores_) {
    StartJob(std::move(job));
  } else if (high_priority) {
    high_queue_.push_back(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

void Cpu::AccrueBusyTime() {
  const SimTime now = sched_.Now();
  cum_busy_ += static_cast<SimDuration>(now - last_change_) * busy_cores_;
  last_change_ = now;
}

void Cpu::StartJob(Job job) {
  AccrueBusyTime();
  ++busy_cores_;
  if (bounded_marks_) {
    // Running totals stay exact; only the past-time history is dropped.
  } else if (marks_.empty() || marks_.back().t != last_change_) {
    marks_.push_back({last_change_, cum_busy_, busy_cores_});
  } else {
    marks_.back().busy = busy_cores_;
  }
  if (observer_) observer_->OnJobStarted(*this, sched_.Now() - job.enqueued_at);
  const SimDuration scaled = ScaledCost(job.cost);
  sched_.ScheduleAfter(
      scaled,
      [this, done = std::move(job.done), scaled]() mutable {
        OnJobDone(std::move(done), scaled);
      },
      "cpu/job_done");
}

void Cpu::OnJobDone(Completion done, SimDuration service) {
  AccrueBusyTime();
  --busy_cores_;
  if (bounded_marks_) {
  } else if (marks_.empty() || marks_.back().t != last_change_) {
    marks_.push_back({last_change_, cum_busy_, busy_cores_});
  } else {
    marks_.back().busy = busy_cores_;
  }
  ++completed_;
  if (observer_) observer_->OnJobFinished(*this, service);
  // Start the next queued job before running the completion so that a
  // completion which submits new work queues behind already-waiting jobs.
  if (!high_queue_.empty()) {
    Job next = std::move(high_queue_.front());
    high_queue_.pop_front();
    StartJob(std::move(next));
  } else if (!queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(next));
  }
  if (done) done();
}

SimDuration Cpu::BusyTimeAt(SimTime t) const {
  const SimTime now = sched_.Now();
  if (t > now) t = now;
  if (t <= 0) return 0;
  // The running-total fast path needs no history, so it must come before
  // the empty-marks bailout — with bounded marks it is the only path.
  if (t >= last_change_) {
    return cum_busy_ + static_cast<SimDuration>(t - last_change_) * busy_cores_;
  }
  if (marks_.empty()) return 0;
  // Last mark with mark.t <= t; marks_ is ordered by construction.
  auto it = std::upper_bound(
      marks_.begin(), marks_.end(), t,
      [](SimTime lhs, const BusyMark& m) { return lhs < m.t; });
  if (it == marks_.begin()) return 0;
  --it;
  return it->cum + static_cast<SimDuration>(t - it->t) * it->busy;
}

double Cpu::Utilization() const { return Utilization(0, sched_.Now()); }

double Cpu::Utilization(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return 0.0;
  const double capacity = static_cast<double>(t1 - t0) * cores_;
  const double used = static_cast<double>(BusyTimeAt(t1) - BusyTimeAt(t0));
  return used > capacity ? 1.0 : used / capacity;
}

}  // namespace fabricsim::sim
