#include "sim/rng.h"

#include <cmath>

namespace fabricsim::sim {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
  // All-zero state would be degenerate; SplitMix64 cannot produce four zeros
  // from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::NextExponential(double mean) {
  // Inverse-CDF; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mu, double sigma) {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return mu + sigma * spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * M_PI * u2);
  const double z1 = mag * std::sin(2.0 * M_PI * u2);
  spare_gaussian_ = z1;
  has_spare_gaussian_ = true;
  return mu + sigma * z0;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace fabricsim::sim
