#include "sim/scheduler.h"

#include <utility>

namespace fabricsim::sim {

EventId Scheduler::ScheduleAt(SimTime when, Callback cb) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Event& ev = slab_[slot];
  ev.cb = std::move(cb);
  ev.armed = true;
  ++live_;
  HeapEntry e;
  e.when = when < now_ ? now_ : when;
  e.seq = next_seq_++;
  e.slot = slot;
  e.gen = ev.gen;
  queue_.push(e);
  return MakeId(slot, ev.gen);
}

void Scheduler::Release(Event& ev, std::uint32_t slot) {
  ev.cb = nullptr;  // release captured state eagerly
  ev.armed = false;
  ++ev.gen;
  free_.push_back(slot);
  --live_;
}

bool Scheduler::Cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slab_.size()) return false;
  Event& ev = slab_[slot];
  if (!ev.armed || ev.gen != gen) return false;  // already fired or recycled
  Release(ev, slot);
  // The heap entry stays behind as a stale (slot, gen) pair and is skipped
  // when it surfaces; the generation bump makes it unambiguous.
  return true;
}

bool Scheduler::PopNext(SimTime* when, Callback* cb) {
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    queue_.pop();
    Event& ev = slab_[top.slot];
    if (!ev.armed || ev.gen != top.gen) continue;  // was cancelled
    *when = top.when;
    *cb = std::move(ev.cb);
    Release(ev, top.slot);
    return true;
  }
  return false;
}

std::uint64_t Scheduler::Run(std::uint64_t limit) {
  std::uint64_t n = 0;
  SimTime when = 0;
  Callback cb;
  while (n < limit && PopNext(&when, &cb)) {
    now_ = when;
    ++executed_;
    ++n;
    cb();
  }
  return n;
}

std::uint64_t Scheduler::RunUntil(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    Event& ev = slab_[top.slot];
    if (!ev.armed || ev.gen != top.gen) {  // cancelled: drop and continue
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    queue_.pop();
    Callback cb = std::move(ev.cb);
    Release(ev, top.slot);
    now_ = top.when;
    ++executed_;
    ++n;
    cb();
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Scheduler::Step() {
  SimTime when = 0;
  Callback cb;
  if (!PopNext(&when, &cb)) return false;
  now_ = when;
  ++executed_;
  cb();
  return true;
}

}  // namespace fabricsim::sim
