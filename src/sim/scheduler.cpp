#include "sim/scheduler.h"

#include <chrono>
#include <utility>

#include "sim/profiler.h"

namespace fabricsim::sim {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EventId Scheduler::ScheduleImpl(SimTime when, Callback cb, const char* tag,
                                bool observer) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Event& ev = slab_[slot];
  ev.cb = std::move(cb);
  ev.tag = tag;
  ev.armed = true;
  ev.observer = observer;
  ++live_;
  HeapEntry e;
  e.when = when < now_ ? now_ : when;
  e.seq = next_seq_++;
  e.slot = slot;
  e.gen = ev.gen;
  queue_.push(e);
  return MakeId(slot, ev.gen);
}

void Scheduler::Release(Event& ev, std::uint32_t slot) {
  ev.cb = nullptr;  // release captured state eagerly
  ev.tag = nullptr;
  ev.armed = false;
  ev.observer = false;
  ++ev.gen;
  free_.push_back(slot);
  --live_;
}

bool Scheduler::Cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slab_.size()) return false;
  Event& ev = slab_[slot];
  if (!ev.armed || ev.gen != gen) return false;  // already fired or recycled
  Release(ev, slot);
  // The heap entry stays behind as a stale (slot, gen) pair and is skipped
  // when it surfaces; the generation bump makes it unambiguous.
  return true;
}

bool Scheduler::PopNext(Fired* out) {
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    queue_.pop();
    Event& ev = slab_[top.slot];
    if (!ev.armed || ev.gen != top.gen) continue;  // was cancelled
    out->when = top.when;
    out->cb = std::move(ev.cb);
    out->tag = ev.tag;
    out->observer = ev.observer;
    Release(ev, top.slot);
    return true;
  }
  return false;
}

void Scheduler::Dispatch(Fired& fired) {
  now_ = fired.when;
  if (!fired.observer) ++executed_;
  if (profiler_ != nullptr) {
    const std::uint64_t t0 = SteadyNowNs();
    fired.cb();
    profiler_->OnEvent(fired.tag, now_, t0, SteadyNowNs());
  } else {
    fired.cb();
  }
}

std::uint64_t Scheduler::Run(std::uint64_t limit) {
  std::uint64_t n = 0;
  Fired fired;
  while (n < limit && PopNext(&fired)) {
    ++n;
    Dispatch(fired);
  }
  return n;
}

std::uint64_t Scheduler::RunUntil(SimTime until) {
  std::uint64_t n = 0;
  Fired fired;
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    Event& ev = slab_[top.slot];
    if (!ev.armed || ev.gen != top.gen) {  // cancelled: drop and continue
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    queue_.pop();
    fired.when = top.when;
    fired.cb = std::move(ev.cb);
    fired.tag = ev.tag;
    fired.observer = ev.observer;
    Release(ev, top.slot);
    ++n;
    Dispatch(fired);
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Scheduler::Step() {
  Fired fired;
  if (!PopNext(&fired)) return false;
  Dispatch(fired);
  return true;
}

}  // namespace fabricsim::sim
