#include "sim/scheduler.h"

#include <utility>

namespace fabricsim::sim {

EventId Scheduler::ScheduleAt(SimTime when, Callback cb) {
  Entry e;
  e.when = when < now_ ? now_ : when;
  e.seq = next_seq_++;
  e.id = next_id_++;
  e.cb = std::make_shared<Callback>(std::move(cb));
  const EventId id = e.id;
  queue_.push(std::move(e));
  pending_.insert(id);
  return id;
}

bool Scheduler::Cancel(EventId id) { return pending_.erase(id) != 0; }

bool Scheduler::PopNext(Entry& out) {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (pending_.erase(top.id) == 0) continue;  // was cancelled
    out = std::move(top);
    return true;
  }
  return false;
}

std::uint64_t Scheduler::Run(std::uint64_t limit) {
  std::uint64_t n = 0;
  Entry e;
  while (n < limit && PopNext(e)) {
    now_ = e.when;
    ++executed_;
    ++n;
    (*e.cb)();
  }
  return n;
}

std::uint64_t Scheduler::RunUntil(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (pending_.count(top.id) == 0) {  // cancelled: drop and continue
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    Entry e = top;
    queue_.pop();
    pending_.erase(e.id);
    now_ = e.when;
    ++executed_;
    ++n;
    (*e.cb)();
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Scheduler::Step() {
  Entry e;
  if (!PopNext(e)) return false;
  now_ = e.when;
  ++executed_;
  (*e.cb)();
  return true;
}

}  // namespace fabricsim::sim
