#include "sim/scheduler.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "runner/thread_pool.h"
#include "sim/profiler.h"

namespace fabricsim::sim {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The scheduling context: which scheduler's code is running on this thread,
// and in which lane. `tls_sched` disambiguates when several schedulers share
// a host thread (sweep runners execute whole experiments per pool thread);
// a context only applies to its own scheduler.
thread_local const Scheduler* tls_sched = nullptr;
thread_local int tls_lane = Scheduler::kGlobalLane;
thread_local bool tls_in_window = false;

struct ContextSave {
  const Scheduler* sched;
  int lane;
  bool in_window;
};

ContextSave SaveContext(const Scheduler* sched, bool in_window) {
  ContextSave prev{tls_sched, tls_lane, tls_in_window};
  tls_sched = sched;
  tls_in_window = in_window;
  return prev;
}

void RestoreContext(const ContextSave& prev) {
  tls_sched = prev.sched;
  tls_lane = prev.lane;
  tls_in_window = prev.in_window;
}

#if defined(__GNUC__) || defined(__clang__)
inline void PrefetchSlot(const void* p) { __builtin_prefetch(p, 0, 1); }
#else
inline void PrefetchSlot(const void*) {}
#endif

}  // namespace

Scheduler::Scheduler() { lanes_.emplace_back(); }

Scheduler::~Scheduler() = default;

SimTime Scheduler::Now() const {
  if (parallel_active_ && tls_sched == this && tls_in_window) {
    return lanes_[static_cast<std::size_t>(tls_lane)].now;
  }
  return now_;
}

int Scheduler::AddLane() {
  lanes_.emplace_back();
  lanes_.back().now = now_;
  return static_cast<int>(lanes_.size()) - 1;
}

int Scheduler::CurrentLane() const {
  if (tls_sched != this) return kGlobalLane;
  const int lane = tls_lane;
  if (lane < 0 || lane >= static_cast<int>(lanes_.size())) return kGlobalLane;
  return lane;
}

Scheduler::LaneScope::LaneScope(Scheduler& sched, int lane)
    : prev_sched_(tls_sched), prev_lane_(tls_lane) {
  tls_sched = &sched;
  tls_lane = (lane >= 0 && lane < sched.LaneCount()) ? lane : kGlobalLane;
}

Scheduler::LaneScope::~LaneScope() {
  tls_sched = prev_sched_;
  tls_lane = prev_lane_;
}

std::uint32_t Scheduler::Grab(Lane& lane, Callback cb, const char* tag,
                              bool observer) {
  std::uint32_t slot;
  if (!lane.free.empty()) {
    slot = lane.free.back();
    lane.free.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(lane.slab.size());
    lane.slab.emplace_back();
  }
  Event& ev = lane.slab[slot];
  ev.cb = std::move(cb);
  ev.tag = tag;
  ev.armed = true;
  ev.observer = observer;
  ++lane.live;
  return slot;
}

void Scheduler::Release(Lane& lane, Event& ev, std::uint32_t slot) {
  ev.cb = nullptr;  // release captured state eagerly
  ev.tag = nullptr;
  ev.armed = false;
  ev.observer = false;
  ++ev.gen;
  lane.free.push_back(slot);
  --lane.live;
}

EventId Scheduler::ScheduleImpl(int exec_lane, SimTime when, Callback cb,
                                const char* tag, bool observer) {
  Lane& lane = lanes_[static_cast<std::size_t>(exec_lane)];
  const SimTime floor = Now();
  const std::uint32_t slot = Grab(lane, std::move(cb), tag, observer);
  HeapEntry e;
  e.when = when < floor ? floor : when;
  e.seq = lane.next_seq++;
  e.sort_lane = exec_lane;
  e.exec_lane = exec_lane;
  e.slot = slot;
  e.gen = lane.slab[slot].gen;
  if (parallel_active_) {
    lane.queue.push(e);
  } else {
    queue_.push(e);
  }
  return MakeId(exec_lane, slot, e.gen);
}

EventId Scheduler::ScheduleAtLane(int exec_lane, SimTime when, Callback cb,
                                  const char* tag) {
  const int src = CurrentLane();
  if (exec_lane < 0 || exec_lane >= LaneCount()) exec_lane = kGlobalLane;
  Lane& sender = lanes_[static_cast<std::size_t>(src)];
  const SimTime floor = Now();
  const SimTime at = when < floor ? floor : when;
  const std::uint64_t seq = sender.next_seq++;
  if (parallel_active_ && tls_in_window && tls_sched == this &&
      exec_lane != src) {
    // Inside a window on a lane thread: the target lane may be running
    // concurrently, so the event goes to the single-producer mailbox and is
    // materialized by the coordinator at the barrier. The lookahead contract
    // guarantees `at` lies beyond the current window.
    auto& box = sender.outbox[static_cast<std::size_t>(exec_lane)];
    if (box.empty()) sender.out_touched.push_back(exec_lane);
    box.push_back(MailEntry{at, seq, src, std::move(cb), tag});
    return 0;
  }
  Lane& exec = lanes_[static_cast<std::size_t>(exec_lane)];
  const std::uint32_t slot = Grab(exec, std::move(cb), tag, /*observer=*/false);
  HeapEntry e{at, seq, src, exec_lane, slot, exec.slab[slot].gen};
  if (parallel_active_) {
    exec.queue.push(e);
  } else {
    queue_.push(e);
  }
  return MakeId(exec_lane, slot, e.gen);
}

bool Scheduler::Cancel(EventId id) {
  const std::uint32_t slot =
      static_cast<std::uint32_t>(id & ((1u << kSlotBits) - 1));
  const std::uint32_t gen24 =
      static_cast<std::uint32_t>((id >> kSlotBits) & ((1u << kGenBits) - 1));
  const int lane_index = static_cast<int>(id >> (kGenBits + kSlotBits));
  if (lane_index >= LaneCount()) return false;
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  if (slot >= lane.slab.size()) return false;
  Event& ev = lane.slab[slot];
  if (!ev.armed || (ev.gen & ((1u << kGenBits) - 1)) != gen24) return false;
  Release(lane, ev, slot);
  // The heap entry stays behind as a stale (slot, gen) pair and is skipped
  // when it surfaces; the generation bump makes it unambiguous.
  return true;
}

bool Scheduler::PopNext(Fired* out) {
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    queue_.pop();
    Lane& lane = lanes_[static_cast<std::size_t>(top.exec_lane)];
    Event& ev = lane.slab[top.slot];
    if (!ev.armed || ev.gen != top.gen) continue;  // was cancelled
    out->when = top.when;
    out->seq = top.seq;
    out->sort_lane = top.sort_lane;
    out->exec_lane = top.exec_lane;
    out->cb = std::move(ev.cb);
    out->tag = ev.tag;
    out->observer = ev.observer;
    Release(lane, ev, top.slot);
    if (!queue_.empty()) {
      const HeapEntry& nxt = queue_.top();
      PrefetchSlot(&lanes_[static_cast<std::size_t>(nxt.exec_lane)]
                        .slab[nxt.slot]);
    }
    return true;
  }
  return false;
}

bool Scheduler::PeekLane(Lane& lane, HeapEntry* out) {
  while (!lane.queue.empty()) {
    const HeapEntry top = lane.queue.top();
    Event& ev = lane.slab[top.slot];
    if (!ev.armed || ev.gen != top.gen) {  // cancelled: drop and continue
      lane.queue.pop();
      continue;
    }
    *out = top;
    return true;
  }
  return false;
}

void Scheduler::Dispatch(Fired& fired) {
  now_ = fired.when;
  Lane& lane = lanes_[static_cast<std::size_t>(fired.exec_lane)];
  lane.now = fired.when;
  ++lane.dispatched;
  if (!fired.observer) ++lane.executed;
  tls_lane = fired.exec_lane;
  if (profiler_ != nullptr) {
    const std::uint64_t t0 = SteadyNowNs();
    fired.cb();
    profiler_->OnEvent(fired.tag, now_, t0, SteadyNowNs());
  } else {
    fired.cb();
  }
}

std::uint64_t Scheduler::Run(std::uint64_t limit) {
  const ContextSave prev = SaveContext(this, /*in_window=*/false);
  std::uint64_t n = 0;
  Fired fired;
  while (n < limit && PopNext(&fired)) {
    ++n;
    Dispatch(fired);
  }
  RestoreContext(prev);
  return n;
}

std::uint64_t Scheduler::RunUntilSerial(SimTime until) {
  const ContextSave prev = SaveContext(this, /*in_window=*/false);
  std::uint64_t n = 0;
  Fired fired;
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    Lane& lane = lanes_[static_cast<std::size_t>(top.exec_lane)];
    Event& ev = lane.slab[top.slot];
    if (!ev.armed || ev.gen != top.gen) {  // cancelled: drop and continue
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    queue_.pop();
    fired.when = top.when;
    fired.seq = top.seq;
    fired.sort_lane = top.sort_lane;
    fired.exec_lane = top.exec_lane;
    fired.cb = std::move(ev.cb);
    fired.tag = ev.tag;
    fired.observer = ev.observer;
    Release(lane, ev, top.slot);
    if (!queue_.empty()) {
      const HeapEntry& nxt = queue_.top();
      PrefetchSlot(&lanes_[static_cast<std::size_t>(nxt.exec_lane)]
                        .slab[nxt.slot]);
    }
    ++n;
    Dispatch(fired);
  }
  if (now_ < until) now_ = until;
  RestoreContext(prev);
  return n;
}

std::uint64_t Scheduler::RunUntil(SimTime until) {
  if (threads_ > 1 && lookahead_ > 0 && LaneCount() > 1) {
    return RunUntilParallel(until);
  }
  return RunUntilSerial(until);
}

bool Scheduler::Step() {
  const ContextSave prev = SaveContext(this, /*in_window=*/false);
  Fired fired;
  const bool fired_one = PopNext(&fired);
  if (fired_one) Dispatch(fired);
  RestoreContext(prev);
  return fired_one;
}

std::size_t Scheduler::PendingEvents() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.live;
  return n;
}

std::uint64_t Scheduler::ExecutedEvents() const {
  std::uint64_t n = 0;
  for (const Lane& lane : lanes_) n += lane.executed;
  return n;
}

std::uint64_t Scheduler::TotalDispatched() const {
  std::uint64_t n = 0;
  for (const Lane& lane : lanes_) n += lane.dispatched;
  return n;
}

std::size_t Scheduler::PoolCapacity() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.slab.size();
  return n;
}

std::size_t Scheduler::PoolFree() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.free.size();
  return n;
}

void Scheduler::SetParallel(int threads, SimDuration lookahead) {
  threads_ = threads < 1 ? 1 : threads;
  lookahead_ = lookahead;
}

bool Scheduler::Deferring() const {
  return parallel_active_ && tls_in_window && tls_sched == this;
}

void Scheduler::DeferShared(std::function<void()> op) {
  if (!Deferring()) {
    op();
    return;
  }
  Lane& lane = lanes_[static_cast<std::size_t>(tls_lane)];
  lane.ops.push_back(DeferredOp{lane.cur_when, lane.cur_seq,
                                lane.cur_sort_lane, lane.op_sub++,
                                std::move(op)});
}

// ----------------------------------------------------------------------
// Conservative parallel engine
// ----------------------------------------------------------------------

void Scheduler::EnterParallel() {
  parallel_active_ = true;
  const int lanes = LaneCount();
  for (Lane& lane : lanes_) {
    lane.now = now_;
    lane.outbox.assign(static_cast<std::size_t>(lanes),
                       std::vector<MailEntry>());
    lane.out_touched.clear();
    lane.ops.clear();
    lane.op_sub = 0;
  }
  // Partition the serial global queue into the per-lane queues. Stale
  // (cancelled) entries are dropped for good here.
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    queue_.pop();
    Lane& lane = lanes_[static_cast<std::size_t>(top.exec_lane)];
    const Event& ev = lane.slab[top.slot];
    if (!ev.armed || ev.gen != top.gen) continue;
    lane.queue.push(top);
  }
  // Static lane-to-worker assignment, round-robin so machines of one kind
  // (the endorser block, the broker block) spread across workers.
  const int workers = std::min(threads_, lanes);
  worker_lanes_.assign(static_cast<std::size_t>(workers), std::vector<int>());
  for (int lane = 0; lane < lanes; ++lane) {
    worker_lanes_[static_cast<std::size_t>(lane % workers)].push_back(lane);
  }
  worker_profilers_.clear();
  if (profiler_ != nullptr) {
    for (int w = 0; w < workers; ++w) {
      worker_profilers_.push_back(std::make_unique<DesProfiler>());
    }
  }
  stop_workers_.store(false, std::memory_order_relaxed);
  epoch_.store(0, std::memory_order_relaxed);
  remaining_.store(0, std::memory_order_relaxed);
  if (workers > 1) {
    pool_ = std::make_unique<runner::ThreadPool>(
        static_cast<unsigned>(workers - 1));
    for (int w = 1; w < workers; ++w) {
      pool_->Submit([this, w] { WorkerLoop(w); });
    }
  }
}

void Scheduler::ExitParallel() {
  if (pool_ != nullptr) {
    stop_workers_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    pool_.reset();  // drains and joins the persistent worker loops
  }
  // Merge the per-lane queues back into the serial global queue so Run(),
  // Step(), and serial RunUntil keep working after a parallel run.
  for (Lane& lane : lanes_) {
    while (!lane.queue.empty()) {
      const HeapEntry top = lane.queue.top();
      lane.queue.pop();
      const Event& ev = lane.slab[top.slot];
      if (!ev.armed || ev.gen != top.gen) continue;
      queue_.push(top);
    }
    lane.outbox.clear();
    lane.out_touched.clear();
  }
  if (profiler_ != nullptr) {
    for (const auto& wp : worker_profilers_) profiler_->Merge(*wp);
  }
  worker_profilers_.clear();
  worker_lanes_.clear();
  parallel_active_ = false;
}

void Scheduler::WorkerLoop(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    for (int spin = 0; spin < 2048 && e == seen; ++spin) {
      e = epoch_.load(std::memory_order_acquire);
    }
    while (e == seen) {  // blocking wait after the short spin
      epoch_.wait(seen, std::memory_order_acquire);
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (stop_workers_.load(std::memory_order_acquire)) return;
    const SimTime wend = win_end_;
    DesProfiler* prof = worker_profilers_.empty()
                            ? nullptr
                            : worker_profilers_[static_cast<std::size_t>(w)].get();
    for (int lane : worker_lanes_[static_cast<std::size_t>(w)]) {
      RunLaneWindow(lane, wend, prof);
    }
    remaining_.fetch_sub(1, std::memory_order_release);
    remaining_.notify_all();
  }
}

void Scheduler::RunLaneWindow(int lane_index, SimTime win_end,
                              DesProfiler* prof) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  const ContextSave prev = SaveContext(this, /*in_window=*/true);
  tls_lane = lane_index;
  HeapEntry top;
  while (PeekLane(lane, &top) && top.when < win_end) {
    lane.queue.pop();
    Event& ev = lane.slab[top.slot];
    Callback cb = std::move(ev.cb);
    const char* tag = ev.tag;
    const bool observer = ev.observer;
    Release(lane, ev, top.slot);
    if (!lane.queue.empty()) {
      PrefetchSlot(&lane.slab[lane.queue.top().slot]);
    }
    lane.now = top.when;
    lane.cur_when = top.when;
    lane.cur_seq = top.seq;
    lane.cur_sort_lane = top.sort_lane;
    ++lane.dispatched;
    if (!observer) ++lane.executed;
    if (prof != nullptr) {
      const std::uint64_t t0 = SteadyNowNs();
      cb();
      prof->OnEvent(tag, lane.now, t0, SteadyNowNs());
    } else {
      cb();
    }
  }
  // Batched per-window advance: one clock write covers every empty tick up
  // to the window boundary.
  if (lane.now < win_end - 1) lane.now = win_end - 1;
  RestoreContext(prev);
}

void Scheduler::RunInstant(SimTime t) {
  const ContextSave prev = SaveContext(this, /*in_window=*/false);
  DesProfiler* prof = worker_profilers_.empty()
                          ? profiler_
                          : worker_profilers_[0].get();
  now_ = t;
  for (;;) {
    // k-way min over lane queue heads, restricted to time t: the global key
    // order of the serial engine, one instant at a time.
    int best_lane = -1;
    HeapEntry best{};
    for (int i = 0; i < LaneCount(); ++i) {
      HeapEntry e;
      if (!PeekLane(lanes_[static_cast<std::size_t>(i)], &e)) continue;
      if (e.when != t) continue;
      const bool better = best_lane < 0 || e.sort_lane < best.sort_lane ||
                          (e.sort_lane == best.sort_lane && e.seq < best.seq);
      if (better) {
        best = e;
        best_lane = i;
      }
    }
    if (best_lane < 0) break;
    Lane& lane = lanes_[static_cast<std::size_t>(best_lane)];
    lane.queue.pop();
    Event& ev = lane.slab[best.slot];
    Callback cb = std::move(ev.cb);
    const char* tag = ev.tag;
    const bool observer = ev.observer;
    Release(lane, ev, best.slot);
    lane.now = t;
    ++lane.dispatched;
    if (!observer) ++lane.executed;
    tls_lane = best_lane;
    if (prof != nullptr) {
      const std::uint64_t t0 = SteadyNowNs();
      cb();
      prof->OnEvent(tag, t, t0, SteadyNowNs());
    } else {
      cb();
    }
  }
  RestoreContext(prev);
}

void Scheduler::DrainMailboxes() {
  for (Lane& src : lanes_) {
    if (src.out_touched.empty()) continue;
    for (const int dst : src.out_touched) {
      Lane& d = lanes_[static_cast<std::size_t>(dst)];
      auto& box = src.outbox[static_cast<std::size_t>(dst)];
      for (MailEntry& m : box) {
        // The lookahead contract makes this clamp a no-op; it is kept as a
        // safety net so a misdeclared lookahead degrades to a causality
        // clamp instead of time travel.
        const SimTime at = m.when < d.now ? d.now : m.when;
        const std::uint32_t slot =
            Grab(d, std::move(m.cb), m.tag, /*observer=*/false);
        d.queue.push(
            HeapEntry{at, m.seq, m.sort_lane, dst, slot, d.slab[slot].gen});
      }
      box.clear();
    }
    src.out_touched.clear();
  }
}

void Scheduler::FlushDeferredOps() {
  scratch_ops_.clear();
  for (Lane& lane : lanes_) {
    if (lane.ops.empty()) continue;
    std::move(lane.ops.begin(), lane.ops.end(),
              std::back_inserter(scratch_ops_));
    lane.ops.clear();
  }
  if (scratch_ops_.empty()) return;
  // Exact serial apply order: the deferring events' keys, then call order
  // within one event.
  std::sort(scratch_ops_.begin(), scratch_ops_.end(),
            [](const DeferredOp& a, const DeferredOp& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.sort_lane != b.sort_lane) return a.sort_lane < b.sort_lane;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.sub < b.sub;
            });
  for (DeferredOp& d : scratch_ops_) d.op();
  scratch_ops_.clear();
}

std::uint64_t Scheduler::RunUntilParallel(SimTime until) {
  const std::uint64_t before = TotalDispatched();
  EnterParallel();
  const int workers = static_cast<int>(worker_lanes_.size());
  for (;;) {
    // Global minimum next-event time, and the control lane's next time.
    SimTime tmin = -1;
    SimTime t0 = -1;
    for (int i = 0; i < LaneCount(); ++i) {
      HeapEntry e;
      if (!PeekLane(lanes_[static_cast<std::size_t>(i)], &e)) continue;
      if (tmin < 0 || e.when < tmin) tmin = e.when;
      if (i == kGlobalLane) t0 = e.when;
    }
    if (tmin < 0 || tmin > until) break;
    if (t0 == tmin) {
      // A control-lane event is due at the horizon: run this instant
      // serially across all lanes so its global side effects (faults,
      // samplers) interleave exactly as in the serial engine.
      RunInstant(tmin);
      ++instants_;
      continue;
    }
    SimTime wend = tmin + lookahead_;
    if (t0 >= 0 && t0 < wend) wend = t0;
    if (until + 1 < wend) wend = until + 1;
    win_end_ = wend;
    if (workers > 1) {
      remaining_.store(workers - 1, std::memory_order_relaxed);
      epoch_.fetch_add(1, std::memory_order_release);
      epoch_.notify_all();
    }
    DesProfiler* prof =
        worker_profilers_.empty() ? nullptr : worker_profilers_[0].get();
    for (int lane : worker_lanes_[0]) RunLaneWindow(lane, wend, prof);
    if (workers > 1) {
      int r = remaining_.load(std::memory_order_acquire);
      while (r != 0) {
        remaining_.wait(r, std::memory_order_acquire);
        r = remaining_.load(std::memory_order_acquire);
      }
    }
    ++windows_;
    DrainMailboxes();
    FlushDeferredOps();
    now_ = wend - 1;
  }
  ExitParallel();
  if (now_ < until) now_ = until;
  return TotalDispatched() - before;
}

}  // namespace fabricsim::sim
