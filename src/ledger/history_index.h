// Key-history index (Fabric's history database).
//
// Records, per (namespace, key), the chronological list of valid
// transactions that wrote it, enabling GetHistoryForKey-style queries and
// giving tests an independent record to cross-check MVCC against.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "proto/block.h"

namespace fabricsim::ledger {

/// One historical modification of a key.
struct KeyModification {
  std::uint64_t block_num = 0;
  std::uint32_t tx_index = 0;
  std::string tx_id;
  bool is_delete = false;
  proto::Bytes value;
};

class HistoryIndex {
 public:
  /// Indexes the writes of all VALID transactions in `block`.
  void IndexBlock(const proto::Block& block,
                  const std::vector<proto::ValidationCode>& codes);

  /// Keeps only the newest `cap` modifications per key (0 = keep all, the
  /// default). Memory is otherwise O(total valid writes), which long soak
  /// runs cannot afford; Fabric's history DB is disk-backed so the real
  /// system has no such bound.
  void SetPerKeyCap(std::size_t cap) { per_key_cap_ = cap; }

  /// History of a key, oldest retained first. Empty if never written.
  [[nodiscard]] const std::vector<KeyModification>& HistoryFor(
      const std::string& ns, const std::string& key) const;

  [[nodiscard]] std::size_t TrackedKeys() const { return index_.size(); }

 private:
  std::unordered_map<std::string, std::vector<KeyModification>> index_;
  std::size_t per_key_cap_ = 0;
  static const std::vector<KeyModification> kEmpty;
};

}  // namespace fabricsim::ledger
