#include "ledger/mvcc.h"

#include <map>
#include <optional>

namespace fabricsim::ledger {
namespace {

/// Pending view: committed state overlaid with writes from earlier valid
/// transactions of the block being validated.
class PendingView {
 public:
  explicit PendingView(const StateDb& state) : state_(state) {}

  [[nodiscard]] std::optional<proto::KeyVersion> GetVersion(
      const std::string& ns, const std::string& key) const {
    auto it = overlay_.find(StateDb::CompositeKey(ns, key));
    if (it != overlay_.end()) return it->second;  // nullopt-like: see Apply
    return state_.GetVersion(ns, key);
  }

  /// Re-executes a range query against committed state + the in-block
  /// overlay: the (key, version) sequence a transaction validating now
  /// would observe. Used for phantom detection.
  [[nodiscard]] std::vector<std::pair<std::string, proto::KeyVersion>>
  RangeVersions(const std::string& ns, const std::string& start_key,
                const std::string& end_key) const {
    std::map<std::string, std::optional<proto::KeyVersion>> merged;
    for (const auto& [key, value] : state_.GetRange(ns, start_key, end_key)) {
      merged[key] = value.version;
    }
    // Overlay entries within the namespace and range win.
    const std::string prefix = StateDb::CompositeKey(ns, "");
    for (const auto& [composite, version] : overlay_) {
      if (composite.compare(0, prefix.size(), prefix) != 0) continue;
      const std::string key = composite.substr(prefix.size());
      if (key < start_key) continue;
      if (!end_key.empty() && key >= end_key) continue;
      merged[key] = version;  // nullopt = deleted in this block
    }
    std::vector<std::pair<std::string, proto::KeyVersion>> out;
    out.reserve(merged.size());
    for (auto& [key, version] : merged) {
      if (version) out.emplace_back(key, *version);
    }
    return out;
  }

  void ApplyWrites(const proto::TxReadWriteSet& rwset,
                   proto::KeyVersion version) {
    for (const auto& ns : rwset.ns_rwsets) {
      for (const auto& w : ns.writes) {
        overlay_[StateDb::CompositeKey(ns.ns, w.key)] =
            w.is_delete ? std::optional<proto::KeyVersion>{} : version;
      }
    }
  }

 private:
  const StateDb& state_;
  // Value nullopt == key deleted in this block.
  std::unordered_map<std::string, std::optional<proto::KeyVersion>> overlay_;
};

}  // namespace

MvccResult MvccValidator::Validate(
    const proto::Block& block, const StateDb& state,
    const std::vector<proto::ValidationCode>* precomputed) {
  MvccResult out;
  out.codes.resize(block.transactions.size(), proto::ValidationCode::kValid);
  PendingView view(state);

  for (std::size_t i = 0; i < block.transactions.size(); ++i) {
    if (precomputed != nullptr && i < precomputed->size() &&
        (*precomputed)[i] != proto::ValidationCode::kValid) {
      out.codes[i] = (*precomputed)[i];
      continue;
    }
    const auto& tx = block.transactions[i];
    bool conflict = false;
    for (const auto& ns : tx.rwset.ns_rwsets) {
      for (const auto& r : ns.reads) {
        const auto current = view.GetVersion(ns.ns, r.key);
        if (current != r.version) {
          conflict = true;
          break;
        }
      }
      // Phantom detection: the range query must observe the same (key,
      // version) sequence now as it did at simulation time.
      for (const auto& rr : ns.range_reads) {
        if (conflict) break;
        const auto now_results =
            view.RangeVersions(ns.ns, rr.start_key, rr.end_key);
        if (proto::RangeRead::HashResults(now_results) != rr.result_digest) {
          conflict = true;
        }
      }
      if (conflict) break;
    }
    if (conflict) {
      out.codes[i] = proto::ValidationCode::kMvccReadConflict;
      ++out.conflict_count;
      continue;
    }
    ++out.valid_count;
    view.ApplyWrites(
        tx.rwset, proto::KeyVersion{block.header.number,
                                    static_cast<std::uint32_t>(i)});
  }
  return out;
}

void MvccValidator::Commit(const proto::Block& block,
                           const std::vector<proto::ValidationCode>& codes,
                           StateDb& state) {
  for (std::size_t i = 0; i < block.transactions.size(); ++i) {
    if (i < codes.size() && codes[i] != proto::ValidationCode::kValid) {
      continue;
    }
    state.ApplyRwSet(block.transactions[i].rwset,
                     proto::KeyVersion{block.header.number,
                                       static_cast<std::uint32_t>(i)});
  }
  state.SetHeight(block.header.number + 1);
}

void MvccValidator::CommitBulk(const proto::Block& block,
                               const std::vector<proto::ValidationCode>& codes,
                               StateDb& state) {
  std::vector<std::pair<const proto::TxReadWriteSet*, proto::KeyVersion>>
      batch;
  batch.reserve(block.transactions.size());
  for (std::size_t i = 0; i < block.transactions.size(); ++i) {
    if (i < codes.size() && codes[i] != proto::ValidationCode::kValid) {
      continue;
    }
    batch.emplace_back(&block.transactions[i].rwset,
                       proto::KeyVersion{block.header.number,
                                         static_cast<std::uint32_t>(i)});
  }
  state.ApplyBatch(batch);
  state.SetHeight(block.header.number + 1);
}

}  // namespace fabricsim::ledger
