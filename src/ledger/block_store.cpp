#include "ledger/block_store.h"

namespace fabricsim::ledger {

void BlockStore::Append(proto::BlockPtr block,
                        std::vector<proto::ValidationCode> codes) {
  const std::uint64_t num = Height();
  for (std::size_t i = 0; i < block->transactions.size(); ++i) {
    tx_index_.emplace(
        block->transactions[i].tx_id,
        TxLocation{num, static_cast<std::uint32_t>(i)});
  }
  total_txs_ += block->transactions.size();
  stored_bytes_ += block->WireSize();
  blocks_.push_back(std::move(block));
  codes_.push_back(std::move(codes));
  PruneFront();
}

void BlockStore::PruneFront() {
  if (keep_blocks_ == 0) return;
  while (blocks_.size() > keep_blocks_) {
    const proto::BlockPtr& oldest = blocks_.front();
    for (const auto& tx : oldest->transactions) {
      auto it = tx_index_.find(tx.tx_id);
      // Guard the block number: a resubmitted tx id may have landed again in
      // a newer (retained) block, whose index entry must survive.
      if (it != tx_index_.end() && it->second.block_num == first_block_num_) {
        tx_index_.erase(it);
      }
    }
    blocks_.pop_front();
    codes_.pop_front();
    ++first_block_num_;
  }
}

const std::vector<proto::ValidationCode>& BlockStore::CodesFor(
    std::uint64_t number) const {
  static const std::vector<proto::ValidationCode> kEmpty;
  if (number < first_block_num_ || number >= Height()) return kEmpty;
  return codes_[static_cast<std::size_t>(number - first_block_num_)];
}

proto::BlockPtr BlockStore::GetBlock(std::uint64_t number) const {
  if (number < first_block_num_ || number >= Height()) return nullptr;
  return blocks_[static_cast<std::size_t>(number - first_block_num_)];
}

proto::BlockPtr BlockStore::LastBlock() const {
  return blocks_.empty() ? nullptr : blocks_.back();
}

bool BlockStore::HasTransaction(const std::string& tx_id) const {
  return tx_index_.count(tx_id) != 0;
}

std::optional<TxLocation> BlockStore::FindTransaction(
    const std::string& tx_id) const {
  auto it = tx_index_.find(tx_id);
  if (it == tx_index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace fabricsim::ledger
