#include "ledger/block_store.h"

namespace fabricsim::ledger {

void BlockStore::Append(proto::BlockPtr block,
                        std::vector<proto::ValidationCode> codes) {
  const auto num = static_cast<std::uint64_t>(blocks_.size());
  for (std::size_t i = 0; i < block->transactions.size(); ++i) {
    tx_index_.emplace(
        block->transactions[i].tx_id,
        TxLocation{num, static_cast<std::uint32_t>(i)});
  }
  stored_bytes_ += block->WireSize();
  blocks_.push_back(std::move(block));
  codes_.push_back(std::move(codes));
}

const std::vector<proto::ValidationCode>& BlockStore::CodesFor(
    std::uint64_t number) const {
  static const std::vector<proto::ValidationCode> kEmpty;
  if (number >= codes_.size()) return kEmpty;
  return codes_[static_cast<std::size_t>(number)];
}

proto::BlockPtr BlockStore::GetBlock(std::uint64_t number) const {
  if (number >= blocks_.size()) return nullptr;
  return blocks_[static_cast<std::size_t>(number)];
}

proto::BlockPtr BlockStore::LastBlock() const {
  return blocks_.empty() ? nullptr : blocks_.back();
}

bool BlockStore::HasTransaction(const std::string& tx_id) const {
  return tx_index_.count(tx_id) != 0;
}

std::optional<TxLocation> BlockStore::FindTransaction(
    const std::string& tx_id) const {
  auto it = tx_index_.find(tx_id);
  if (it == tx_index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace fabricsim::ledger
