#include "ledger/history_index.h"

#include "ledger/state_db.h"

namespace fabricsim::ledger {

const std::vector<KeyModification> HistoryIndex::kEmpty = {};

void HistoryIndex::IndexBlock(const proto::Block& block,
                              const std::vector<proto::ValidationCode>& codes) {
  for (std::size_t i = 0; i < block.transactions.size(); ++i) {
    if (i < codes.size() && codes[i] != proto::ValidationCode::kValid) {
      continue;
    }
    const auto& tx = block.transactions[i];
    for (const auto& ns : tx.rwset.ns_rwsets) {
      for (const auto& w : ns.writes) {
        KeyModification mod;
        mod.block_num = block.header.number;
        mod.tx_index = static_cast<std::uint32_t>(i);
        mod.tx_id = tx.tx_id;
        mod.is_delete = w.is_delete;
        mod.value = w.value;
        auto& mods = index_[StateDb::CompositeKey(ns.ns, w.key)];
        mods.push_back(std::move(mod));
        if (per_key_cap_ > 0 && mods.size() > per_key_cap_) {
          mods.erase(mods.begin(),
                     mods.begin() +
                         static_cast<std::ptrdiff_t>(mods.size() -
                                                     per_key_cap_));
        }
      }
    }
  }
}

const std::vector<KeyModification>& HistoryIndex::HistoryFor(
    const std::string& ns, const std::string& key) const {
  auto it = index_.find(StateDb::CompositeKey(ns, key));
  return it == index_.end() ? kEmpty : it->second;
}

}  // namespace fabricsim::ledger
