#include "ledger/blockchain.h"

namespace fabricsim::ledger {

crypto::Digest Blockchain::TipHash() const {
  auto last = store_.LastBlock();
  if (!last) return crypto::Digest{};
  return last->header.Hash();
}

bool Blockchain::ValidateLinkage(const proto::Block& block,
                                 std::string* reason) const {
  if (block.header.number != store_.Height()) {
    if (reason) *reason = "non-sequential block number";
    return false;
  }
  if (block.header.previous_hash != TipHash()) {
    if (reason) *reason = "previous-hash mismatch";
    return false;
  }
  if (!data_hash_check_disabled_ &&
      block.header.data_hash != block.DataHash()) {
    if (reason) *reason = "data-hash mismatch";
    return false;
  }
  return true;
}

bool Blockchain::Append(proto::BlockPtr block,
                        std::vector<proto::ValidationCode> codes) {
  if (!ValidateLinkage(*block)) return false;
  store_.Append(std::move(block), std::move(codes));
  return true;
}

ChainCheck Blockchain::Audit() const {
  ChainCheck out;
  crypto::Digest prev{};
  std::uint64_t start = store_.FirstBlockNumber();
  if (start > 0) {
    // Pruned prefix: anchor on the oldest resident block's own header hash
    // and verify linkage from its successor onward.
    const auto anchor = store_.GetBlock(start);
    if (!anchor) return out;  // fully pruned; nothing auditable
    if (anchor->header.data_hash != anchor->DataHash()) {
      return {false, start, "data-hash mismatch"};
    }
    prev = anchor->header.Hash();
    ++start;
  }
  for (std::uint64_t n = start; n < store_.Height(); ++n) {
    const auto block = store_.GetBlock(n);
    if (block->header.number != n) {
      return {false, n, "block number mismatch"};
    }
    if (block->header.previous_hash != prev) {
      return {false, n, "previous-hash mismatch"};
    }
    if (block->header.data_hash != block->DataHash()) {
      return {false, n, "data-hash mismatch"};
    }
    prev = block->header.Hash();
  }
  return out;
}

}  // namespace fabricsim::ledger
