// Versioned world-state database (Fabric's LevelDB state database model).
//
// Every key holds a value plus the height-based version (block number,
// tx index) of the transaction that last wrote it. The endorser reads
// versions during simulation; the committer compares them during MVCC
// validation and bumps them at commit.
//
// Storage is a hash map keyed by composite (ns, key): the hot path — point
// reads in endorsement and MVCC, writes at commit — is O(1) instead of the
// O(log n) string-compare walks a tree map costs. Ordered range scans
// (GetStateByRange) are served by a per-namespace sorted key index built
// lazily on first scan and invalidated only when the namespace's key *set*
// changes (new key, delete); overwrites keep it warm.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "proto/bytes.h"
#include "proto/rwset.h"

namespace fabricsim::ledger {

/// A value with its version, as stored.
struct VersionedValue {
  proto::Bytes value;
  proto::KeyVersion version;
};

/// In-memory versioned KV store, namespaced by chaincode.
class StateDb {
 public:
  /// Reads a key. Returns nullopt if absent (or deleted).
  [[nodiscard]] std::optional<VersionedValue> Get(const std::string& ns,
                                                  const std::string& key) const;

  /// Version-only read (what MVCC needs; cheaper than copying the value).
  [[nodiscard]] std::optional<proto::KeyVersion> GetVersion(
      const std::string& ns, const std::string& key) const;

  /// Writes a key at `version`.
  void Put(const std::string& ns, const std::string& key, proto::Bytes value,
           proto::KeyVersion version);

  /// Deletes a key.
  void Delete(const std::string& ns, const std::string& key);

  /// Applies all writes of one transaction's rwset at `version`.
  void ApplyRwSet(const proto::TxReadWriteSet& rwset,
                  proto::KeyVersion version);

  /// Bulk commit (Thakkar et al.): applies a whole block's worth of
  /// transaction writes as one batched ledger write — what a LevelDB
  /// WriteBatch per block does for real Fabric. The end state is identical
  /// to calling ApplyRwSet per entry in order; only the modeled disk cost
  /// differs (see Calibration::bulk_*).
  void ApplyBatch(
      const std::vector<std::pair<const proto::TxReadWriteSet*,
                                  proto::KeyVersion>>& batch);

  /// Ordered range scan within a namespace: keys in [start_key, end_key)
  /// (an empty end_key means "to the end of the namespace"), with values
  /// and versions, in key order — Fabric's GetStateByRange.
  [[nodiscard]] std::vector<std::pair<std::string, VersionedValue>> GetRange(
      const std::string& ns, const std::string& start_key,
      const std::string& end_key) const;

  /// Number of live keys across all namespaces.
  [[nodiscard]] std::size_t KeyCount() const { return map_.size(); }

  /// Height of the last committed block (for recovery checks); updated by
  /// the committer via SetHeight.
  [[nodiscard]] std::uint64_t Height() const { return height_; }
  void SetHeight(std::uint64_t h) { height_ = h; }

  /// Composite key helper (ns and key joined with an unambiguous separator).
  static std::string CompositeKey(const std::string& ns,
                                  const std::string& key);

 private:
  // Sorted (key, entry) pairs of one namespace. Entry pointers stay valid
  // across rehashes (unordered_map nodes are stable) and across overwrites;
  // any key-set change invalidates the whole namespace index.
  struct RangeIndex {
    std::vector<std::pair<std::string, const VersionedValue*>> keys;
    bool valid = false;
  };

  void InvalidateRange(const std::string& ns) const;
  const RangeIndex& RangeFor(const std::string& ns) const;

  std::unordered_map<std::string, VersionedValue> map_;  // by composite key
  mutable std::unordered_map<std::string, RangeIndex> range_index_;  // by ns
  std::uint64_t height_ = 0;
};

}  // namespace fabricsim::ledger
