// Append-only block storage with a transaction-id index.
//
// Mirrors Fabric's file-based block store: blocks are retrievable by number,
// transactions by id, and the committer consults the tx-id index for
// duplicate-transaction detection.
//
// Retention: by default every block is kept (the real block store is disk-
// backed and effectively unbounded, but here blocks live in RSS, which makes
// million-transaction soak runs infeasible). SetRetention(n) keeps only the
// newest n blocks in memory — older blocks and their tx-index entries are
// pruned, so duplicate detection's horizon shrinks to the retained window.
// That is safe whenever client resubmission of old tx ids is bounded (every
// non-chaos run), and the soak bench relies on it for flat memory.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/block.h"

namespace fabricsim::ledger {

/// Location of a transaction inside the chain.
struct TxLocation {
  std::uint64_t block_num = 0;
  std::uint32_t tx_index = 0;
};

class BlockStore {
 public:
  /// Appends a block with its per-transaction validation codes (the
  /// committer fills the metadata; storing the codes beside the shared
  /// immutable block avoids deep-copying it on every peer). The caller
  /// (Blockchain) is responsible for chain integrity; the store only
  /// indexes.
  void Append(proto::BlockPtr block,
              std::vector<proto::ValidationCode> codes = {});

  /// Keeps only the newest `keep_blocks` blocks in memory (0 = keep all,
  /// the default). Takes effect on the next Append.
  void SetRetention(std::uint64_t keep_blocks) { keep_blocks_ = keep_blocks; }

  /// Number of blocks appended ever (== next block number). Pruned blocks
  /// still count: height is chain position, not residency.
  [[nodiscard]] std::uint64_t Height() const {
    return first_block_num_ + blocks_.size();
  }

  /// Oldest block number still resident (0 until pruning starts).
  [[nodiscard]] std::uint64_t FirstBlockNumber() const {
    return first_block_num_;
  }

  /// Blocks currently resident in memory.
  [[nodiscard]] std::size_t ResidentBlocks() const { return blocks_.size(); }

  /// Block by number, or nullptr if out of range or pruned.
  [[nodiscard]] proto::BlockPtr GetBlock(std::uint64_t number) const;

  [[nodiscard]] proto::BlockPtr LastBlock() const;

  /// True if a transaction with this id has been stored (valid or not —
  /// Fabric records invalid transactions too and rejects id reuse). Under
  /// retention, only transactions in resident blocks are visible.
  [[nodiscard]] bool HasTransaction(const std::string& tx_id) const;

  [[nodiscard]] std::optional<TxLocation> FindTransaction(
      const std::string& tx_id) const;

  /// Validation codes recorded when block `number` was committed (empty for
  /// blocks appended without codes, e.g. on the orderer side, or pruned).
  [[nodiscard]] const std::vector<proto::ValidationCode>& CodesFor(
      std::uint64_t number) const;

  /// Total transactions appended ever (pruned blocks included).
  [[nodiscard]] std::uint64_t TxCount() const { return total_txs_; }

  /// Total serialized bytes appended ever (storage-size accounting; not
  /// reduced by pruning — it models cumulative disk writes).
  [[nodiscard]] std::uint64_t StoredBytes() const { return stored_bytes_; }

 private:
  void PruneFront();

  std::deque<proto::BlockPtr> blocks_;
  std::deque<std::vector<proto::ValidationCode>> codes_;
  std::unordered_map<std::string, TxLocation> tx_index_;
  std::uint64_t first_block_num_ = 0;
  std::uint64_t keep_blocks_ = 0;  // 0 = unbounded
  std::uint64_t total_txs_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace fabricsim::ledger
