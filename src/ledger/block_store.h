// Append-only block storage with a transaction-id index.
//
// Mirrors Fabric's file-based block store: blocks are retrievable by number,
// transactions by id, and the committer consults the tx-id index for
// duplicate-transaction detection.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/block.h"

namespace fabricsim::ledger {

/// Location of a transaction inside the chain.
struct TxLocation {
  std::uint64_t block_num = 0;
  std::uint32_t tx_index = 0;
};

class BlockStore {
 public:
  /// Appends a block with its per-transaction validation codes (the
  /// committer fills the metadata; storing the codes beside the shared
  /// immutable block avoids deep-copying it on every peer). The caller
  /// (Blockchain) is responsible for chain integrity; the store only
  /// indexes.
  void Append(proto::BlockPtr block,
              std::vector<proto::ValidationCode> codes = {});

  /// Number of blocks stored (== next block number).
  [[nodiscard]] std::uint64_t Height() const { return blocks_.size(); }

  /// Block by number, or nullptr if out of range.
  [[nodiscard]] proto::BlockPtr GetBlock(std::uint64_t number) const;

  [[nodiscard]] proto::BlockPtr LastBlock() const;

  /// True if a transaction with this id has been stored (valid or not —
  /// Fabric records invalid transactions too and rejects id reuse).
  [[nodiscard]] bool HasTransaction(const std::string& tx_id) const;

  [[nodiscard]] std::optional<TxLocation> FindTransaction(
      const std::string& tx_id) const;

  /// Validation codes recorded when block `number` was committed (empty for
  /// blocks appended without codes, e.g. on the orderer side).
  [[nodiscard]] const std::vector<proto::ValidationCode>& CodesFor(
      std::uint64_t number) const;

  /// Total transactions across all blocks.
  [[nodiscard]] std::uint64_t TxCount() const { return tx_index_.size(); }

  /// Total serialized bytes appended (storage-size accounting).
  [[nodiscard]] std::uint64_t StoredBytes() const { return stored_bytes_; }

 private:
  std::vector<proto::BlockPtr> blocks_;
  std::vector<std::vector<proto::ValidationCode>> codes_;
  std::unordered_map<std::string, TxLocation> tx_index_;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace fabricsim::ledger
