// Hash-chained blockchain wrapper around the block store.
//
// Enforces that appended blocks link correctly (number sequential, previous
// hash matches the tip's header hash, data hash matches the transactions)
// and can audit the full chain — the immutability property tests rely on it.
#pragma once

#include <string>

#include "ledger/block_store.h"

namespace fabricsim::ledger {

/// Outcome of a chain-integrity check.
struct ChainCheck {
  bool ok = true;
  std::uint64_t bad_block = 0;
  std::string reason;
};

class Blockchain {
 public:
  /// Validates the block's linkage and appends it (with the committer's
  /// per-transaction validation codes, if any).
  /// Returns false (and stores nothing) if linkage or data hash is wrong.
  bool Append(proto::BlockPtr block,
              std::vector<proto::ValidationCode> codes = {});

  [[nodiscard]] std::uint64_t Height() const { return store_.Height(); }
  [[nodiscard]] const BlockStore& Store() const { return store_; }
  [[nodiscard]] BlockStore& MutableStore() { return store_; }

  /// Hash of the current tip's header (all-zero before genesis).
  [[nodiscard]] crypto::Digest TipHash() const;

  /// Walks the resident chain re-checking every link and data hash. Under
  /// retention the audit starts at the first block whose predecessor is
  /// still resident (linkage of the oldest resident block has no anchor).
  [[nodiscard]] ChainCheck Audit() const;

  /// Validates linkage of `block` against the current tip without appending.
  [[nodiscard]] bool ValidateLinkage(const proto::Block& block,
                                     std::string* reason = nullptr) const;

  /// Failpoint: skip ValidateLinkage's data-hash arm (number and
  /// previous-hash stay enforced) so tamper-block drills can land a forged
  /// payload on the ledger and show the no-forged-commit invariant fire.
  /// Audit() is unaffected. Never set in production runs.
  void SetDataHashCheckDisabled(bool disabled) {
    data_hash_check_disabled_ = disabled;
  }

 private:
  BlockStore store_;
  bool data_hash_check_disabled_ = false;  // failpoint
};

}  // namespace fabricsim::ledger
