#include "ledger/state_db.h"

namespace fabricsim::ledger {

std::string StateDb::CompositeKey(const std::string& ns,
                                  const std::string& key) {
  // The namespace length is encoded explicitly so that a NUL inside either
  // component cannot make distinct (ns, key) pairs collide.
  std::string out = std::to_string(ns.size());
  out.reserve(out.size() + ns.size() + key.size() + 1);
  out.push_back('\0');
  out.append(ns);
  out.append(key);
  return out;
}

std::optional<VersionedValue> StateDb::Get(const std::string& ns,
                                           const std::string& key) const {
  auto it = map_.find(CompositeKey(ns, key));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::optional<proto::KeyVersion> StateDb::GetVersion(
    const std::string& ns, const std::string& key) const {
  auto it = map_.find(CompositeKey(ns, key));
  if (it == map_.end()) return std::nullopt;
  return it->second.version;
}

void StateDb::Put(const std::string& ns, const std::string& key,
                  proto::Bytes value, proto::KeyVersion version) {
  map_[CompositeKey(ns, key)] = VersionedValue{std::move(value), version};
}

void StateDb::Delete(const std::string& ns, const std::string& key) {
  map_.erase(CompositeKey(ns, key));
}

std::vector<std::pair<std::string, VersionedValue>> StateDb::GetRange(
    const std::string& ns, const std::string& start_key,
    const std::string& end_key) const {
  std::vector<std::pair<std::string, VersionedValue>> out;
  const std::string prefix = CompositeKey(ns, "");
  auto it = map_.lower_bound(CompositeKey(ns, start_key));
  for (; it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;  // next ns
    std::string key = it->first.substr(prefix.size());
    if (!end_key.empty() && key >= end_key) break;
    out.emplace_back(std::move(key), it->second);
  }
  return out;
}

void StateDb::ApplyRwSet(const proto::TxReadWriteSet& rwset,
                         proto::KeyVersion version) {
  for (const auto& ns : rwset.ns_rwsets) {
    for (const auto& w : ns.writes) {
      if (w.is_delete) {
        Delete(ns.ns, w.key);
      } else {
        Put(ns.ns, w.key, w.value, version);
      }
    }
  }
}

}  // namespace fabricsim::ledger
