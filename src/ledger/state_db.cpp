#include "ledger/state_db.h"

#include <algorithm>

namespace fabricsim::ledger {

std::string StateDb::CompositeKey(const std::string& ns,
                                  const std::string& key) {
  // The namespace length is encoded explicitly so that a NUL inside either
  // component cannot make distinct (ns, key) pairs collide.
  std::string out = std::to_string(ns.size());
  out.reserve(out.size() + ns.size() + key.size() + 1);
  out.push_back('\0');
  out.append(ns);
  out.append(key);
  return out;
}

std::optional<VersionedValue> StateDb::Get(const std::string& ns,
                                           const std::string& key) const {
  auto it = map_.find(CompositeKey(ns, key));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::optional<proto::KeyVersion> StateDb::GetVersion(
    const std::string& ns, const std::string& key) const {
  auto it = map_.find(CompositeKey(ns, key));
  if (it == map_.end()) return std::nullopt;
  return it->second.version;
}

void StateDb::Put(const std::string& ns, const std::string& key,
                  proto::Bytes value, proto::KeyVersion version) {
  auto [it, inserted] =
      map_.try_emplace(CompositeKey(ns, key), std::move(value), version);
  if (!inserted) {
    // Overwrite: the key set is unchanged, the range index stays warm (it
    // holds a stable pointer to this node).
    it->second.value = std::move(value);
    it->second.version = version;
  } else if (!range_index_.empty()) {
    InvalidateRange(ns);
  }
}

void StateDb::Delete(const std::string& ns, const std::string& key) {
  if (map_.erase(CompositeKey(ns, key)) != 0 && !range_index_.empty()) {
    InvalidateRange(ns);
  }
}

void StateDb::InvalidateRange(const std::string& ns) const {
  auto it = range_index_.find(ns);
  if (it != range_index_.end()) it->second.valid = false;
}

const StateDb::RangeIndex& StateDb::RangeFor(const std::string& ns) const {
  RangeIndex& idx = range_index_[ns];
  if (idx.valid) return idx;
  idx.keys.clear();
  const std::string prefix = CompositeKey(ns, "");
  for (const auto& [composite, vv] : map_) {
    if (composite.size() >= prefix.size() &&
        composite.compare(0, prefix.size(), prefix) == 0) {
      idx.keys.emplace_back(composite.substr(prefix.size()), &vv);
    }
  }
  std::sort(idx.keys.begin(), idx.keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  idx.valid = true;
  return idx;
}

std::vector<std::pair<std::string, VersionedValue>> StateDb::GetRange(
    const std::string& ns, const std::string& start_key,
    const std::string& end_key) const {
  std::vector<std::pair<std::string, VersionedValue>> out;
  const RangeIndex& idx = RangeFor(ns);
  auto it = std::lower_bound(
      idx.keys.begin(), idx.keys.end(), start_key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  for (; it != idx.keys.end(); ++it) {
    if (!end_key.empty() && it->first >= end_key) break;
    out.emplace_back(it->first, *it->second);
  }
  return out;
}

void StateDb::ApplyRwSet(const proto::TxReadWriteSet& rwset,
                         proto::KeyVersion version) {
  for (const auto& ns : rwset.ns_rwsets) {
    for (const auto& w : ns.writes) {
      if (w.is_delete) {
        Delete(ns.ns, w.key);
      } else {
        Put(ns.ns, w.key, w.value, version);
      }
    }
  }
}

void StateDb::ApplyBatch(
    const std::vector<std::pair<const proto::TxReadWriteSet*,
                                proto::KeyVersion>>& batch) {
  // One batched write: later entries overwrite earlier ones exactly as the
  // per-tx path would (LevelDB WriteBatch semantics).
  for (const auto& [rwset, version] : batch) {
    ApplyRwSet(*rwset, version);
  }
}

}  // namespace fabricsim::ledger
