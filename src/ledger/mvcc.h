// MVCC read/write-conflict validation (Fabric's "MVCC check").
//
// For each transaction of a block, in order, every recorded read version
// must equal the key's current committed version — where "current" includes
// writes of *earlier valid transactions in the same block* (Fabric applies
// an in-block pending view). Valid transactions then bump their write keys'
// versions to (block number, tx index).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ledger/state_db.h"
#include "proto/block.h"

namespace fabricsim::ledger {

/// Result of validating one block.
struct MvccResult {
  std::vector<proto::ValidationCode> codes;  // one per transaction
  std::size_t valid_count = 0;
  std::size_t conflict_count = 0;
};

class MvccValidator {
 public:
  /// Validates the block's transactions against `state`. Transactions
  /// already flagged invalid in `precomputed` (e.g. by VSCC) keep their code
  /// and do not apply writes. Does not mutate `state`.
  [[nodiscard]] static MvccResult Validate(
      const proto::Block& block, const StateDb& state,
      const std::vector<proto::ValidationCode>* precomputed = nullptr);

  /// Applies the writes of all VALID transactions of `block` (per `codes`)
  /// to `state` and bumps the state height. Call after Validate.
  static void Commit(const proto::Block& block,
                     const std::vector<proto::ValidationCode>& codes,
                     StateDb& state);

  /// Bulk-commit variant (--opt-bulk-commit): gathers every valid
  /// transaction's writes and applies them as one StateDb::ApplyBatch call
  /// — one batched ledger write per block. End state is identical to
  /// Commit (same writes, same order, same versions).
  static void CommitBulk(const proto::Block& block,
                         const std::vector<proto::ValidationCode>& codes,
                         StateDb& state);
};

}  // namespace fabricsim::ledger
