#include "chaincode/smallbank.h"

#include <charconv>

namespace fabricsim::chaincode {
namespace {

std::optional<std::int64_t> ParseAmount(const std::string& s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> ReadInt(ChaincodeStub& stub,
                                    const std::string& key) {
  auto raw = stub.GetState(key);
  if (!raw) return std::nullopt;
  return ParseAmount(proto::ToString(*raw));
}

void WriteInt(ChaincodeStub& stub, const std::string& key, std::int64_t v) {
  stub.PutState(key, proto::ToBytes(std::to_string(v)));
}

}  // namespace

std::string SmallBankChaincode::CheckingKey(const std::string& cust) {
  return "chk:" + cust;
}

std::string SmallBankChaincode::SavingsKey(const std::string& cust) {
  return "sav:" + cust;
}

sim::SimDuration SmallBankChaincode::ExecutionCost(
    const proto::ChaincodeInvocation&) const {
  return sim::FromMillis(3.5);
}

Response SmallBankChaincode::Invoke(ChaincodeStub& stub) {
  const std::string& fn = stub.Function();

  if (fn == "create") {
    if (stub.Args().size() != 3) {
      return Response::Error("create(cust, checking, savings)");
    }
    const auto chk = ParseAmount(stub.ArgStr(1));
    const auto sav = ParseAmount(stub.ArgStr(2));
    if (!chk || !sav || *chk < 0 || *sav < 0) {
      return Response::Error("bad initial balances");
    }
    WriteInt(stub, CheckingKey(stub.ArgStr(0)), *chk);
    WriteInt(stub, SavingsKey(stub.ArgStr(0)), *sav);
    return Response::Success();
  }

  if (fn == "transact_savings") {
    if (stub.Args().size() != 2) {
      return Response::Error("transact_savings(cust, amt)");
    }
    const auto amt = ParseAmount(stub.ArgStr(1));
    if (!amt) return Response::Error("bad amount");
    const auto bal = ReadInt(stub, SavingsKey(stub.ArgStr(0)));
    if (!bal) return Response::Error("no such customer");
    if (*bal + *amt < 0) return Response::Error("would overdraw savings");
    WriteInt(stub, SavingsKey(stub.ArgStr(0)), *bal + *amt);
    return Response::Success();
  }

  if (fn == "deposit_checking") {
    if (stub.Args().size() != 2) {
      return Response::Error("deposit_checking(cust, amt)");
    }
    const auto amt = ParseAmount(stub.ArgStr(1));
    if (!amt || *amt < 0) return Response::Error("bad amount");
    const auto bal = ReadInt(stub, CheckingKey(stub.ArgStr(0)));
    if (!bal) return Response::Error("no such customer");
    WriteInt(stub, CheckingKey(stub.ArgStr(0)), *bal + *amt);
    return Response::Success();
  }

  if (fn == "send_payment") {
    if (stub.Args().size() != 3) {
      return Response::Error("send_payment(from, to, amt)");
    }
    const auto amt = ParseAmount(stub.ArgStr(2));
    if (!amt || *amt <= 0) return Response::Error("bad amount");
    const auto from_bal = ReadInt(stub, CheckingKey(stub.ArgStr(0)));
    const auto to_bal = ReadInt(stub, CheckingKey(stub.ArgStr(1)));
    if (!from_bal || !to_bal) return Response::Error("no such customer");
    if (*from_bal < *amt) return Response::Error("insufficient funds");
    WriteInt(stub, CheckingKey(stub.ArgStr(0)), *from_bal - *amt);
    WriteInt(stub, CheckingKey(stub.ArgStr(1)), *to_bal + *amt);
    return Response::Success();
  }

  if (fn == "write_check") {
    if (stub.Args().size() != 2) {
      return Response::Error("write_check(cust, amt)");
    }
    const auto amt = ParseAmount(stub.ArgStr(1));
    if (!amt || *amt <= 0) return Response::Error("bad amount");
    const auto chk = ReadInt(stub, CheckingKey(stub.ArgStr(0)));
    const auto sav = ReadInt(stub, SavingsKey(stub.ArgStr(0)));
    if (!chk || !sav) return Response::Error("no such customer");
    // SmallBank semantics: overdraft allowed with a $1 penalty when the
    // combined balance cannot cover the check.
    const std::int64_t penalty = (*chk + *sav < *amt) ? 1 : 0;
    WriteInt(stub, CheckingKey(stub.ArgStr(0)), *chk - *amt - penalty);
    return Response::Success();
  }

  if (fn == "amalgamate") {
    if (stub.Args().size() != 2) {
      return Response::Error("amalgamate(from, to)");
    }
    const auto from_sav = ReadInt(stub, SavingsKey(stub.ArgStr(0)));
    const auto from_chk = ReadInt(stub, CheckingKey(stub.ArgStr(0)));
    const auto to_chk = ReadInt(stub, CheckingKey(stub.ArgStr(1)));
    if (!from_sav || !from_chk || !to_chk) {
      return Response::Error("no such customer");
    }
    WriteInt(stub, SavingsKey(stub.ArgStr(0)), 0);
    WriteInt(stub, CheckingKey(stub.ArgStr(0)), 0);
    WriteInt(stub, CheckingKey(stub.ArgStr(1)),
             *to_chk + *from_sav + *from_chk);
    return Response::Success();
  }

  if (fn == "query") {
    if (stub.Args().size() != 1) return Response::Error("query(cust)");
    const auto chk = ReadInt(stub, CheckingKey(stub.ArgStr(0)));
    const auto sav = ReadInt(stub, SavingsKey(stub.ArgStr(0)));
    if (!chk || !sav) return Response::Error("no such customer");
    return Response::Success(proto::ToBytes(std::to_string(*chk) + "," +
                                            std::to_string(*sav)));
  }

  return Response::Error("unknown function: " + fn);
}

}  // namespace fabricsim::chaincode
