// Token-transfer chaincode: the classic account-to-account money transfer
// the paper's related-work section discusses (read-write conflicts under
// contention).
#pragma once

#include "chaincode/shim.h"

namespace fabricsim::chaincode {

class TokenChaincode final : public Chaincode {
 public:
  [[nodiscard]] std::string Name() const override { return "token"; }

  /// Functions:
  ///   create(account, amount)     - create an account with a balance
  ///   transfer(from, to, amount)  - read both balances, move funds
  ///   balance(account)            - read-only balance query
  Response Invoke(ChaincodeStub& stub) override;

  /// Integer balances are stored as decimal strings.
  static std::optional<std::int64_t> ParseAmount(const std::string& s);
};

}  // namespace fabricsim::chaincode
