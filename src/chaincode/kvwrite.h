// The paper's benchmark chaincode: writes a (small) value under a key.
//
// The paper drives Fabric with 1-byte-value write transactions; "write"
// reproduces that. "read" and "readwrite" variants exist for workloads that
// need read sets (and hence can MVCC-conflict).
#pragma once

#include "chaincode/shim.h"

namespace fabricsim::chaincode {

class KvWriteChaincode final : public Chaincode {
 public:
  [[nodiscard]] std::string Name() const override { return "kvwrite"; }

  /// Functions:
  ///   write(key, value)       - blind write
  ///   read(key)               - returns value or error if absent
  ///   readwrite(key, value)   - read key (recording version), then write
  ///   delete(key)
  ///   scan(start, end)        - range query; returns "k=v,..." (phantom-
  ///                             protected via range-query info)
  ///   scan_sum_write(start, end, out_key) - aggregate a range into out_key
  Response Invoke(ChaincodeStub& stub) override;
};

}  // namespace fabricsim::chaincode
