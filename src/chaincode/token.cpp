#include "chaincode/token.h"

#include <charconv>

namespace fabricsim::chaincode {

std::optional<std::int64_t> TokenChaincode::ParseAmount(const std::string& s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

namespace {

std::optional<std::int64_t> ReadBalance(ChaincodeStub& stub,
                                        const std::string& account) {
  auto raw = stub.GetState(account);
  if (!raw) return std::nullopt;
  return TokenChaincode::ParseAmount(proto::ToString(*raw));
}

void WriteBalance(ChaincodeStub& stub, const std::string& account,
                  std::int64_t amount) {
  stub.PutState(account, proto::ToBytes(std::to_string(amount)));
}

}  // namespace

Response TokenChaincode::Invoke(ChaincodeStub& stub) {
  const std::string& fn = stub.Function();
  if (fn == "create") {
    if (stub.Args().size() != 2) return Response::Error("create(acct, amt)");
    const auto amount = ParseAmount(stub.ArgStr(1));
    if (!amount || *amount < 0) return Response::Error("bad amount");
    WriteBalance(stub, stub.ArgStr(0), *amount);
    return Response::Success();
  }
  if (fn == "transfer") {
    if (stub.Args().size() != 3) {
      return Response::Error("transfer(from, to, amt)");
    }
    const std::string from = stub.ArgStr(0);
    const std::string to = stub.ArgStr(1);
    if (from == to) return Response::Error("self transfer");
    const auto amount = ParseAmount(stub.ArgStr(2));
    if (!amount || *amount <= 0) return Response::Error("bad amount");
    const auto from_bal = ReadBalance(stub, from);
    if (!from_bal) return Response::Error("no such account: " + from);
    const auto to_bal = ReadBalance(stub, to);
    if (!to_bal) return Response::Error("no such account: " + to);
    if (*from_bal < *amount) return Response::Error("insufficient funds");
    WriteBalance(stub, from, *from_bal - *amount);
    WriteBalance(stub, to, *to_bal + *amount);
    return Response::Success();
  }
  if (fn == "balance") {
    if (stub.Args().size() != 1) return Response::Error("balance(acct)");
    const auto bal = ReadBalance(stub, stub.ArgStr(0));
    if (!bal) return Response::Error("no such account");
    return Response::Success(proto::ToBytes(std::to_string(*bal)));
  }
  return Response::Error("unknown function: " + fn);
}

}  // namespace fabricsim::chaincode
