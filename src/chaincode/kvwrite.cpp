#include "chaincode/kvwrite.h"

namespace fabricsim::chaincode {

Response KvWriteChaincode::Invoke(ChaincodeStub& stub) {
  const std::string& fn = stub.Function();
  if (fn == "write") {
    if (stub.Args().size() != 2) return Response::Error("write(key, value)");
    stub.PutState(stub.ArgStr(0), stub.Args()[1]);
    return Response::Success();
  }
  if (fn == "read") {
    if (stub.Args().size() != 1) return Response::Error("read(key)");
    auto v = stub.GetState(stub.ArgStr(0));
    if (!v) return Response::Error("key not found: " + stub.ArgStr(0));
    return Response::Success(std::move(*v));
  }
  if (fn == "readwrite") {
    if (stub.Args().size() != 2) {
      return Response::Error("readwrite(key, value)");
    }
    stub.GetState(stub.ArgStr(0));  // record the read (version check later)
    stub.PutState(stub.ArgStr(0), stub.Args()[1]);
    return Response::Success();
  }
  if (fn == "delete") {
    if (stub.Args().size() != 1) return Response::Error("delete(key)");
    stub.DelState(stub.ArgStr(0));
    return Response::Success();
  }
  if (fn == "scan") {
    if (stub.Args().size() != 2) return Response::Error("scan(start, end)");
    std::string joined;
    for (const auto& [key, value] :
         stub.GetStateByRange(stub.ArgStr(0), stub.ArgStr(1))) {
      if (!joined.empty()) joined.push_back(',');
      joined += key + "=" + proto::ToString(value);
    }
    return Response::Success(proto::ToBytes(joined));
  }
  if (fn == "scan_sum_write") {
    if (stub.Args().size() != 3) {
      return Response::Error("scan_sum_write(start, end, out_key)");
    }
    // Aggregates the byte-lengths of a range into a single key: a
    // read-modify-write whose read set is a *range* — the canonical
    // phantom-read scenario.
    std::size_t total = 0;
    for (const auto& [key, value] :
         stub.GetStateByRange(stub.ArgStr(0), stub.ArgStr(1))) {
      (void)key;
      total += value.size();
    }
    stub.PutState(stub.ArgStr(2), proto::ToBytes(std::to_string(total)));
    return Response::Success();
  }
  return Response::Error("unknown function: " + fn);
}

}  // namespace fabricsim::chaincode
