// Chaincode shim: the interface user chaincode programs against, and the
// stub that records reads/writes during simulated execution on an endorser.
//
// In Fabric, user chaincode runs in a Docker container and talks to the peer
// over gRPC; GetState/PutState round-trip to the peer's state database. Here
// the chaincode runs in-process, the stub reads the endorser's StateDb
// directly and records the rwset, and the Docker/gRPC round-trip appears as
// a per-invocation CPU cost (see ExecutionCost / calibration).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ledger/state_db.h"
#include "proto/proposal.h"
#include "proto/rwset.h"
#include "sim/time.h"

namespace fabricsim::chaincode {

/// The per-invocation view a chaincode gets: args plus recorded state access.
class ChaincodeStub {
 public:
  ChaincodeStub(const ledger::StateDb& state, std::string ns,
                const proto::ChaincodeInvocation& invocation);

  [[nodiscard]] const std::string& Function() const;
  [[nodiscard]] const std::vector<proto::Bytes>& Args() const;
  [[nodiscard]] std::string ArgStr(std::size_t i) const;

  /// Reads a key, recording the read version. Read-your-writes: a key
  /// written earlier in this invocation returns the pending value without
  /// adding a read record (Fabric's simulator semantics).
  std::optional<proto::Bytes> GetState(const std::string& key);

  /// Ordered scan of committed keys in [start_key, end_key) (empty end =
  /// to the end of the namespace). Records range-query info in the rwset so
  /// the committer can detect phantoms. Pending (uncommitted) writes of
  /// this invocation are NOT visible to range scans, as in Fabric.
  std::vector<std::pair<std::string, proto::Bytes>> GetStateByRange(
      const std::string& start_key, const std::string& end_key);

  /// Writes a key (buffered until commit).
  void PutState(const std::string& key, proto::Bytes value);

  /// Deletes a key (buffered until commit).
  void DelState(const std::string& key);

  /// Extracts the recorded read/write set.
  [[nodiscard]] proto::TxReadWriteSet TakeRwSet() &&;

 private:
  const ledger::StateDb& state_;
  const proto::ChaincodeInvocation& invocation_;
  std::string ns_;
  proto::RwSetBuilder builder_;
};

/// What an invocation returns.
struct Response {
  proto::EndorseStatus status = proto::EndorseStatus::kSuccess;
  proto::Bytes payload;
  std::string message;

  static Response Success(proto::Bytes payload = {});
  static Response Error(std::string message);
};

/// Base class for chaincodes.
class Chaincode {
 public:
  virtual ~Chaincode() = default;

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Business logic; reads/writes via the stub.
  virtual Response Invoke(ChaincodeStub& stub) = 0;

  /// Nominal CPU cost of one invocation on the baseline machine, covering
  /// the Docker/gRPC round-trips and the chaincode's own work. Default is
  /// the calibrated constant for a trivial Go chaincode.
  [[nodiscard]] virtual sim::SimDuration ExecutionCost(
      const proto::ChaincodeInvocation& invocation) const;
};

/// Chaincodes installed on a peer, by name.
class Registry {
 public:
  void Install(std::shared_ptr<Chaincode> cc);
  [[nodiscard]] Chaincode* Find(const std::string& name) const;
  [[nodiscard]] std::size_t Size() const { return map_.size(); }

 private:
  std::unordered_map<std::string, std::shared_ptr<Chaincode>> map_;
};

}  // namespace fabricsim::chaincode
