// SmallBank chaincode: the standard OLTP-style blockchain benchmark
// (Blockbench / Caliper ship equivalents). Each customer has a checking and
// a savings account; operations mix reads and read-modify-writes, creating
// realistic MVCC contention profiles.
#pragma once

#include "chaincode/shim.h"

namespace fabricsim::chaincode {

class SmallBankChaincode final : public Chaincode {
 public:
  [[nodiscard]] std::string Name() const override { return "smallbank"; }

  /// Functions:
  ///   create(cust, checking, savings)
  ///   transact_savings(cust, amt)     - savings += amt (amt may be < 0)
  ///   deposit_checking(cust, amt)     - checking += amt (amt >= 0)
  ///   send_payment(from, to, amt)     - checking transfer
  ///   write_check(cust, amt)          - checking -= amt (overdraft penalty)
  ///   amalgamate(from, to)            - move all of from's funds to to
  ///   query(cust)                     - read both balances
  Response Invoke(ChaincodeStub& stub) override;

  /// SmallBank does a little more per-invocation work than kvwrite.
  [[nodiscard]] sim::SimDuration ExecutionCost(
      const proto::ChaincodeInvocation& invocation) const override;

  static std::string CheckingKey(const std::string& cust);
  static std::string SavingsKey(const std::string& cust);
};

}  // namespace fabricsim::chaincode
