#include "chaincode/shim.h"

namespace fabricsim::chaincode {

ChaincodeStub::ChaincodeStub(const ledger::StateDb& state, std::string ns,
                             const proto::ChaincodeInvocation& invocation)
    : state_(state), invocation_(invocation), ns_(ns), builder_(std::move(ns)) {}

const std::string& ChaincodeStub::Function() const {
  return invocation_.function;
}

const std::vector<proto::Bytes>& ChaincodeStub::Args() const {
  return invocation_.args;
}

std::string ChaincodeStub::ArgStr(std::size_t i) const {
  if (i >= invocation_.args.size()) return {};
  return proto::ToString(invocation_.args[i]);
}

std::optional<proto::Bytes> ChaincodeStub::GetState(const std::string& key) {
  if (const proto::KVWrite* pending = builder_.PendingWrite(key)) {
    if (pending->is_delete) return std::nullopt;
    return pending->value;
  }
  const auto stored = state_.Get(ns_, key);
  if (stored) {
    builder_.AddRead(key, stored->version);
    return stored->value;
  }
  builder_.AddRead(key, std::nullopt);
  return std::nullopt;
}

std::vector<std::pair<std::string, proto::Bytes>>
ChaincodeStub::GetStateByRange(const std::string& start_key,
                               const std::string& end_key) {
  const auto stored = state_.GetRange(ns_, start_key, end_key);
  std::vector<std::pair<std::string, proto::KeyVersion>> versions;
  std::vector<std::pair<std::string, proto::Bytes>> out;
  versions.reserve(stored.size());
  out.reserve(stored.size());
  for (const auto& [key, value] : stored) {
    versions.emplace_back(key, value.version);
    out.emplace_back(key, value.value);
  }
  builder_.AddRangeRead(start_key, end_key, versions);
  return out;
}

void ChaincodeStub::PutState(const std::string& key, proto::Bytes value) {
  builder_.AddWrite(key, std::move(value));
}

void ChaincodeStub::DelState(const std::string& key) {
  builder_.AddDelete(key);
}

proto::TxReadWriteSet ChaincodeStub::TakeRwSet() && {
  return std::move(builder_).Build();
}

Response Response::Success(proto::Bytes payload) {
  return Response{proto::EndorseStatus::kSuccess, std::move(payload), {}};
}

Response Response::Error(std::string message) {
  return Response{proto::EndorseStatus::kChaincodeError, {},
                  std::move(message)};
}

sim::SimDuration Chaincode::ExecutionCost(
    const proto::ChaincodeInvocation&) const {
  // Docker exec round-trip + shim gRPC chatter for a trivial chaincode,
  // measured around 3 ms on Fabric v1.4-era hardware.
  return sim::FromMillis(3.0);
}

void Registry::Install(std::shared_ptr<Chaincode> cc) {
  map_[cc->Name()] = std::move(cc);
}

Chaincode* Registry::Find(const std::string& name) const {
  auto it = map_.find(name);
  return it == map_.end() ? nullptr : it->second.get();
}

}  // namespace fabricsim::chaincode
