// chaos_fuzz: seeded random fault-schedule campaigns against the simulated
// Fabric network, with invariant oracle and failing-schedule minimization.
//
//   chaos_fuzz --seed=20260808 --runs=50 --jobs=4
//   chaos_fuzz --seed=1 --runs=200 --time-budget=300 --corpus-dir=out/
//   chaos_fuzz --seed=7 --runs=30 --inject-bug=no-committer-dedup
//
// Stdout is byte-reproducible for a fixed (--seed, --runs, --jobs-agnostic)
// campaign without --time-budget; timings go to stderr. Exit 1 when any
// case fails, 2 on usage errors.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "faults/fuzzer.h"
#include "faults/shrinker.h"

using namespace fabricsim;

namespace {

struct CliOptions {
  faults::FuzzerOptions fuzzer;
  std::string corpus_dir;
  bool help = false;
};

void PrintHelp() {
  std::cout <<
      "chaos_fuzz: randomized fault-schedule campaigns with an invariant\n"
      "oracle and failing-schedule minimization\n"
      "\n"
      "  --seed=<n>          campaign seed; every case derives from it, so\n"
      "                      a campaign is byte-reproducible (default 1)\n"
      "  --runs=<n>          cases to generate (default 50)\n"
      "  --time-budget=<s>   stop starting new cases after this many wall\n"
      "                      seconds (0 = off; budgeted campaigns are not\n"
      "                      byte-reproducible)\n"
      "  --jobs=<n>          host threads (default 1, 0 = hardware\n"
      "                      concurrency); output identical at any setting\n"
      "  --corpus-dir=<dir>  write one .repro corpus file per failure\n"
      "  --max-shrink=<n>    oracle-run budget per shrink (default 200)\n"
      "  --no-shrink         report original failing cases unminimized\n"
      "  --no-determinism    skip the repeat-run fingerprint check (2x\n"
      "                      faster, misses nondeterminism bugs)\n"
      "  --byzantine         every case schedules one Byzantine attack\n"
      "                      (equivocate, tamper-block, bogus-backfill,\n"
      "                      forge-endorsement, replay-tx) against the\n"
      "                      armed defenses; any violation is a bug\n"
      "  --inject-bug=<b>    deliberate bug for demo campaigns:\n"
      "                      no-committer-dedup | silent-drop |\n"
      "                      no-byzantine-defense\n"
      "  --help              this text\n";
}

std::optional<std::string> ArgValue(const std::string& arg,
                                    const std::string& key) {
  const std::string prefix = key + "=";
  if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  return std::nullopt;
}

bool Parse(int argc, char** argv, CliOptions& out, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out.help = true;
      return true;
    }
    if (arg == "--no-shrink") {
      out.fuzzer.shrink = false;
      continue;
    }
    if (arg == "--no-determinism") {
      out.fuzzer.verify_determinism = false;
      continue;
    }
    if (auto v = ArgValue(arg, "--corpus-dir")) {
      out.corpus_dir = *v;
      continue;
    }
    if (arg == "--byzantine") {
      out.fuzzer.byzantine = true;
      continue;
    }
    if (auto v = ArgValue(arg, "--inject-bug")) {
      if (*v == "no-committer-dedup") {
        out.fuzzer.failpoints.disable_committer_dedup = true;
      } else if (*v == "silent-drop") {
        out.fuzzer.failpoints.client_silent_drop_every = 97;
      } else if (*v == "no-byzantine-defense") {
        out.fuzzer.failpoints.disable_byzantine_defense = true;
      } else {
        error = "unknown --inject-bug: " + *v;
        return false;
      }
      continue;
    }
    try {
      if (auto v = ArgValue(arg, "--seed")) {
        out.fuzzer.campaign_seed = std::stoull(*v);
        continue;
      }
      if (auto v = ArgValue(arg, "--runs")) {
        out.fuzzer.runs = std::stoi(*v);
        continue;
      }
      if (auto v = ArgValue(arg, "--time-budget")) {
        out.fuzzer.time_budget_s = std::stod(*v);
        continue;
      }
      if (auto v = ArgValue(arg, "--jobs")) {
        out.fuzzer.jobs = std::stoi(*v);
        continue;
      }
      if (auto v = ArgValue(arg, "--max-shrink")) {
        out.fuzzer.max_shrink_runs = std::stoi(*v);
        continue;
      }
    } catch (const std::exception&) {
      error = "bad numeric value in: " + arg;
      return false;
    }
    error = "unknown argument: " + arg;
    return false;
  }
  if (out.fuzzer.runs <= 0) {
    error = "--runs must be positive";
    return false;
  }
  return true;
}

std::string CorpusFileName(const faults::CampaignFailure& failure) {
  std::string key;
  for (const std::string& arg : failure.shrunk.ToArgs()) key += arg + "\n";
  const std::string hash =
      crypto::DigestHex(crypto::HashStr(key)).substr(0, 12);
  const std::string tag = failure.failure.kind == faults::FailureKind::kInvariant
                              ? failure.failure.invariant
                              : faults::FailureKindName(failure.failure.kind);
  return tag + "-" + hash + ".repro";
}

void WriteCorpusFile(const std::string& dir,
                     const faults::CampaignFailure& failure,
                     std::uint64_t campaign_seed) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + CorpusFileName(failure);
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write corpus file " << path << "\n";
    return;
  }
  os << "# chaos_fuzz corpus entry\n"
     << "# campaign seed " << campaign_seed << ", case " << failure.index
     << ", failure " << faults::FailureKindName(failure.failure.kind);
  if (!failure.failure.invariant.empty()) {
    os << " (" << failure.failure.invariant << ")";
  }
  os << "\n# repro: " << failure.shrunk.ReproLine() << "\n";
  for (const std::string& arg : failure.shrunk.ToArgs()) {
    os << "arg: " << arg << "\n";
  }
  os << "expect_recovery: " << (failure.shrunk.expect_recovery ? 1 : 0)
     << "\n";
  std::cerr << "corpus: wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!Parse(argc, argv, cli, error)) {
    std::cerr << "error: " << error << "\n\n";
    PrintHelp();
    return 2;
  }
  if (cli.help) {
    PrintHelp();
    return 0;
  }

  const faults::ChaosFuzzer fuzzer(cli.fuzzer);
  std::cout << "chaos_fuzz campaign seed=" << cli.fuzzer.campaign_seed
            << " runs=" << cli.fuzzer.runs
            << (cli.fuzzer.byzantine ? " byzantine" : "") << "\n";

  const auto started = std::chrono::steady_clock::now();
  const faults::CampaignResult result = fuzzer.RunCampaign();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  for (const faults::CampaignFailure& failure : result.failures) {
    std::cout << "\nFAIL case " << failure.index << " ["
              << faults::FailureKindName(failure.failure.kind);
    if (!failure.failure.invariant.empty()) {
      std::cout << ": " << failure.failure.invariant;
    }
    std::cout << "]\n";
    std::cout << "  detail: " << failure.failure.detail;
    if (failure.failure.detail.empty() ||
        failure.failure.detail.back() != '\n') {
      std::cout << "\n";
    }
    const std::size_t original_events =
        faults::FaultSchedule::Parse(failure.original.faults).events.size();
    const std::size_t shrunk_events =
        faults::FaultSchedule::Parse(failure.shrunk.faults).events.size();
    std::cout << "  original: " << original_events << " events, "
              << failure.original.faults << "\n";
    std::cout << "  shrunk:   " << shrunk_events << " events ("
              << failure.shrink_oracle_runs << " oracle runs)\n";
    std::cout << "  repro:    " << failure.shrunk.ReproLine() << "\n";
    if (!cli.corpus_dir.empty()) {
      WriteCorpusFile(cli.corpus_dir, failure, cli.fuzzer.campaign_seed);
    }
  }

  std::cout << "\ncampaign: " << result.cases_run << " cases run, "
            << result.cases_skipped << " skipped, " << result.failures.size()
            << " failures\n";
  std::cerr << "wall time: " << elapsed_s << "s\n";
  return result.AllGreen() ? 0 : 1;
}
