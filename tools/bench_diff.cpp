// bench_diff: the CI regression gate over bench JSON files.
//
//   bench_diff <baseline.json> <current.json> [options]
//
//   --host-tol <frac>   host wall/events-per-sec tolerance (default 0.15)
//   --rss-tol <frac>    peak-RSS growth tolerance (default 0.30)
//   --ignore-host       compare simulated metrics only
//
// Exit codes: 0 = within tolerance, 1 = regression or structural mismatch,
// 2 = usage or I/O error. Simulated metrics are compared exactly — any
// drift there is a determinism break, not noise (see src/bench/diff.h).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/diff.h"
#include "bench/json.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <current.json> "
               "[--host-tol <frac>] [--rss-tol <frac>] [--ignore-host]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  fabricsim::bench::DiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host-tol" || arg == "--rss-tol") {
      if (i + 1 >= argc) return Usage();
      char* end = nullptr;
      const double v = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || v < 0.0) return Usage();
      (arg == "--host-tol" ? options.host_tol : options.rss_tol) = v;
    } else if (arg == "--ignore-host") {
      options.check_host = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return Usage();
    }
  }
  if (baseline_path.empty() || current_path.empty()) return Usage();

  std::string baseline_text;
  std::string current_text;
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!ReadFile(current_path, &current_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", current_path.c_str());
    return 2;
  }

  std::string err;
  const auto baseline = fabricsim::bench::Json::Parse(baseline_text, &err);
  if (baseline.IsNull()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", baseline_path.c_str(),
                 err.c_str());
    return 2;
  }
  const auto current = fabricsim::bench::Json::Parse(current_text, &err);
  if (current.IsNull()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", current_path.c_str(),
                 err.c_str());
    return 2;
  }

  const auto report =
      fabricsim::bench::CompareBenchJson(baseline, current, options);
  if (!report.Ok()) {
    std::fprintf(stderr, "bench_diff: %zu failure(s) vs %s:\n",
                 report.failures.size(), baseline_path.c_str());
    for (const auto& f : report.failures) {
      std::fprintf(stderr, "  %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("bench_diff: %s matches baseline within tolerance\n",
              current_path.c_str());
  return 0;
}
