// fabricsim-cli: run a single configurable experiment from the command
// line and print the paper's metrics — a Caliper-style driver for the
// simulated network.
//
// Usage examples:
//   fabricsim_cli --ordering=raft --rate=250 --duration=30
//   fabricsim_cli --ordering=kafka --policy="AND('Org1MSP.peer','Org2MSP.peer')"
//   fabricsim_cli --workload=smallbank --peers=6 --channels=2 --csv
//   fabricsim_cli --ordering=raft --sweep=50,150,250,350 --jobs=4
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/json.h"
#include "fabric/experiment.h"
#include "fabric/optimizations.h"
#include "faults/fault_schedule.h"
#include "faults/invariants.h"
#include "metrics/registry.h"
#include "metrics/reporter.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runner/sweep_runner.h"

using namespace fabricsim;

namespace {

struct CliOptions {
  fabric::OrderingType ordering = fabric::OrderingType::kSolo;
  double rate = 200.0;
  double duration_s = 30.0;
  int peers = 10;
  int committing_peers = 1;
  int clients = -1;
  int osns = 3;
  int brokers = 3;
  int zookeepers = 3;
  int channels = 1;
  std::string policy;  // empty = OR over all peers
  client::WorkloadKind workload = client::WorkloadKind::kKvWrite;
  std::size_t value_size = 1;
  std::size_t key_space = 1000;
  std::uint64_t seed = 42;
  std::uint32_t batch_size = 100;
  double batch_timeout_s = 1.0;
  bool csv = false;
  bool help = false;
  std::string trace_out;      // Chrome trace-event JSON path ("" = off)
  std::string telemetry_csv;  // resource time-series CSV path ("" = off)
  std::string faults;         // declarative fault schedule ("" = none)
  std::string overload;       // off|reject|drop-oldest|block ("" = off)
  std::size_t osn_queue = 512;       // OSN ingress max inflight
  std::size_t endorser_queue = 32;   // endorser ingress max inflight
  std::size_t committer_blocks = 8;  // committer pipeline bound (0 = none)
  double retry_after_ms = 200.0;     // SERVICE_UNAVAILABLE retry-after hint
  double flow_window = 16.0;         // client AIMD initial window (0 = off)
  double pace_tps = 0.0;             // client token-bucket rate (0 = off)
  bool check_invariants = false;
  std::string invariants_out;  // invariant-report JSON path ("" = off)
  fabric::FailpointOptions failpoints;  // deliberate bugs for chaos demos
  bool streaming_stats = false;  // bounded-memory tracker accounting
  std::string metrics_out;       // metrics-timeline path ("" = off)
  std::string metrics_format = "json";  // json|prom
  double metrics_period_ms = 250.0;
  bool profile = false;        // host-side DES profiler + top-N table
  std::string profile_trace;   // Chrome trace of sampled handler spans
  std::uint64_t retain_blocks = 0;   // ledger/OSN blocks kept (0 = all)
  std::size_t history_per_key = 0;   // history-index cap (0 = all)
  std::vector<double> sweep;  // arrival rates; non-empty = sweep mode
  int jobs = 1;               // host threads for --sweep (0 = hw concurrency)
  int des_threads = 1;        // conservative-PDES threads (1 = serial DES)
  fabric::OptimizationOptions optimizations;  // Thakkar-style validate fixes
};

void PrintHelp() {
  std::cout <<
      "fabricsim-cli: drive one experiment on the simulated Fabric network\n"
      "\n"
      "  --ordering=solo|kafka|raft   consenter type (default solo)\n"
      "  --rate=<tps>                 aggregate arrival rate (default 200)\n"
      "  --duration=<s>               measurement window (default 30)\n"
      "  --peers=<n>                  endorsing peers (default 10)\n"
      "  --committing-peers=<n>       dedicated validators (default 1)\n"
      "  --clients=<n>                client machines (default: = peers)\n"
      "  --osns=<n>                   ordering service nodes (default 3)\n"
      "  --brokers=<n>                kafka brokers (default 3)\n"
      "  --zookeepers=<n>             zookeeper servers (default 3)\n"
      "  --channels=<n>               channels (default 1)\n"
      "  --policy=<expr>              endorsement policy, e.g.\n"
      "                               \"AND('Org1MSP.peer','Org2MSP.peer')\"\n"
      "  --workload=kvwrite|readwrite|token|smallbank (default kvwrite)\n"
      "  --value-size=<bytes>         kvwrite value size (default 1)\n"
      "  --key-space=<n>              shared-key pool size (default 1000)\n"
      "  --batch-size=<n>             BatchSize (default 100)\n"
      "  --batch-timeout=<s>          BatchTimeout (default 1.0)\n"
      "  --seed=<n>                   RNG seed (default 42)\n"
      "  --csv                        CSV output\n"
      "  --trace-out=<file>           write a Chrome trace-event JSON of the\n"
      "                               run (open in chrome://tracing or\n"
      "                               https://ui.perfetto.dev); also prints\n"
      "                               the bottleneck-attribution table\n"
      "  --telemetry-csv=<file>       write per-resource time series\n"
      "                               (time_s,resource,metric,value)\n"
      "  --faults=<spec>              chaos schedule, e.g.\n"
      "                               \"crash:leader@15s,revive:leader@25s\"\n"
      "                               or \"tamper-block:osn0@20s-25s\"\n"
      "                               (see src/faults/fault_schedule.h);\n"
      "                               enables client/peer failover, checks\n"
      "                               ledger invariants, reports recovery;\n"
      "                               Byzantine kinds (equivocate,\n"
      "                               tamper-block, bogus-backfill,\n"
      "                               forge-endorsement, replay-tx) also\n"
      "                               arm the peer-side defenses\n"
      "  --overload=reject|drop-oldest|block\n"
      "                               overload protection: bounded ingress\n"
      "                               queues with the given overflow policy\n"
      "                               plus client flow control (default off)\n"
      "  --osn-queue=<n>              OSN ingress max inflight; slots are\n"
      "                               held until the block finishes, so size\n"
      "                               above capacity x block time (default\n"
      "                               512; parked slots are 1x this)\n"
      "  --endorser-queue=<n>         endorser ingress max inflight\n"
      "                               (default 32; parked slots 4x)\n"
      "  --committer-blocks=<n>       committer pipeline bound in blocks\n"
      "                               (default 8; 0 = unbounded)\n"
      "  --retry-after-ms=<ms>        retry-after hint on overload nacks\n"
      "                               (default 200)\n"
      "  --flow-window=<n>            client AIMD initial window (default\n"
      "                               16; 0 disables client flow control)\n"
      "  --pace-tps=<tps>             client token-bucket pacing (0 = off)\n"
      "  --check-invariants           check ledger invariants (and the\n"
      "                               no-silent-drop rule) even without\n"
      "                               faults; non-zero exit on violation\n"
      "  --invariants-out=<file>      write the invariant report as JSON\n"
      "                               (ok, check counts, violations, chain\n"
      "                               audit, stall flag); implies\n"
      "                               --check-invariants\n"
      "  --failpoint=<bug>            inject a deliberate bug so chaos-fuzz\n"
      "                               repros replay exactly:\n"
      "                               no-committer-dedup (committers skip\n"
      "                               tx-id screening), silent-drop:<n>\n"
      "                               (clients drop every nth submission\n"
      "                               without a terminal status), or\n"
      "                               no-byzantine-defense (attestation and\n"
      "                               the commit-time data-hash re-check\n"
      "                               stay off, so planted attacks reach\n"
      "                               the ledger and the invariants fire)\n"
      "  --streaming-stats            bounded-memory tracker accounting:\n"
      "                               per-tx records retire on terminal\n"
      "                               state; identical metrics, flat RSS\n"
      "                               (ignored when faults/trace/invariants\n"
      "                               need post-hoc records)\n"
      "  --retain-blocks=<n>          blocks kept per peer ledger and OSN\n"
      "                               backfill history (0 = all); bounds\n"
      "                               memory for long runs, shrinks the\n"
      "                               dedup horizon to the retained window\n"
      "  --history-per-key=<n>        history-index modifications kept per\n"
      "                               key (0 = all)\n"
      "  --metrics-out=<file>         write the metrics-registry timeline\n"
      "                               (queue depths, sheds, scheduler\n"
      "                               backlog, tracker occupancy) sampled\n"
      "                               every --metrics-period-ms of simulated\n"
      "                               time; simulated results are unchanged\n"
      "  --metrics-format=json|prom   timeline format (default json;\n"
      "                               prom = Prometheus text exposition)\n"
      "  --metrics-period-ms=<ms>     sampling cadence (default 250)\n"
      "  --profile                    host-side DES profiler: prints the\n"
      "                               top-10 handler table (dispatch count,\n"
      "                               host time) after the run\n"
      "  --profile-trace=<file>       write sampled handler spans as Chrome\n"
      "                               trace-event JSON (implies --profile)\n"
      "  --sweep=<r1,r2,...>          run the base configuration once per\n"
      "                               arrival rate and print one summary row\n"
      "                               per rate; non-zero exit if any run's\n"
      "                               chain audit fails (not combinable with\n"
      "                               --trace-out/--telemetry-csv/--faults)\n"
      "  --jobs=<n>                   host worker threads for --sweep\n"
      "                               (default 1; 0 = hardware concurrency);\n"
      "                               results are identical at any setting\n"
      "  --des-threads=<n>            run the event loop itself on n threads\n"
      "                               (conservative PDES; default 1 = serial;\n"
      "                               simulated output is byte-identical at\n"
      "                               any thread count)\n"
      "  --opt-msp-cache              MSP identity-verification cache on the\n"
      "                               committers: repeat cert chains skip the\n"
      "                               full validation cost (Thakkar et al.,\n"
      "                               arXiv:1805.11390); changes simulated\n"
      "                               VSCC service times\n"
      "  --opt-vscc-workers=<n>       dedicated VSCC validation workers per\n"
      "                               committer; txs within a block validate\n"
      "                               concurrently, commit order unchanged\n"
      "                               (0 = off, share the peer cores)\n"
      "  --opt-bulk-commit            batch all of a block's state-db writes\n"
      "                               into one ledger write\n"
      "  --opt-policy-shortcircuit    stop verifying endorsements once the\n"
      "                               endorsement policy is satisfied\n"
      "  --help                       this text\n";
}

std::optional<std::string> ArgValue(const std::string& arg,
                                    const std::string& key) {
  const std::string prefix = key + "=";
  if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  return std::nullopt;
}

bool Parse(int argc, char** argv, CliOptions& out, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out.help = true;
      return true;
    }
    if (arg == "--csv") {
      out.csv = true;
      continue;
    }
    if (auto v = ArgValue(arg, "--ordering")) {
      if (*v == "solo") {
        out.ordering = fabric::OrderingType::kSolo;
      } else if (*v == "kafka") {
        out.ordering = fabric::OrderingType::kKafka;
      } else if (*v == "raft") {
        out.ordering = fabric::OrderingType::kRaft;
      } else {
        error = "unknown ordering: " + *v;
        return false;
      }
      continue;
    }
    if (auto v = ArgValue(arg, "--workload")) {
      if (*v == "kvwrite") {
        out.workload = client::WorkloadKind::kKvWrite;
      } else if (*v == "readwrite") {
        out.workload = client::WorkloadKind::kKvReadWrite;
      } else if (*v == "token") {
        out.workload = client::WorkloadKind::kTokenTransfer;
      } else if (*v == "smallbank") {
        out.workload = client::WorkloadKind::kSmallBank;
      } else {
        error = "unknown workload: " + *v;
        return false;
      }
      continue;
    }
    if (auto v = ArgValue(arg, "--policy")) {
      out.policy = *v;
      continue;
    }
    if (auto v = ArgValue(arg, "--trace-out")) {
      out.trace_out = *v;
      continue;
    }
    if (auto v = ArgValue(arg, "--telemetry-csv")) {
      out.telemetry_csv = *v;
      continue;
    }
    if (auto v = ArgValue(arg, "--faults")) {
      out.faults = *v;
      continue;
    }
    if (auto v = ArgValue(arg, "--overload")) {
      if (*v != "off" && *v != "reject" && *v != "drop-oldest" &&
          *v != "block") {
        error = "unknown overload policy: " + *v;
        return false;
      }
      out.overload = (*v == "off") ? "" : *v;
      continue;
    }
    if (arg == "--check-invariants") {
      out.check_invariants = true;
      continue;
    }
    if (auto v = ArgValue(arg, "--invariants-out")) {
      out.invariants_out = *v;
      out.check_invariants = true;
      continue;
    }
    if (auto v = ArgValue(arg, "--failpoint")) {
      if (*v == "no-committer-dedup") {
        out.failpoints.disable_committer_dedup = true;
      } else if (v->rfind("silent-drop:", 0) == 0) {
        try {
          out.failpoints.client_silent_drop_every =
              std::stoi(v->substr(12));
        } catch (const std::exception&) {
          out.failpoints.client_silent_drop_every = 0;
        }
        if (out.failpoints.client_silent_drop_every <= 0) {
          error = "bad --failpoint silent-drop count: " + *v;
          return false;
        }
      } else if (*v == "no-byzantine-defense") {
        out.failpoints.disable_byzantine_defense = true;
      } else {
        error = "unknown failpoint: " + *v;
        return false;
      }
      continue;
    }
    if (arg == "--streaming-stats") {
      out.streaming_stats = true;
      continue;
    }
    if (arg == "--opt-msp-cache") {
      out.optimizations.msp_cache = true;
      continue;
    }
    if (arg == "--opt-bulk-commit") {
      out.optimizations.bulk_commit = true;
      continue;
    }
    if (arg == "--opt-policy-shortcircuit") {
      out.optimizations.policy_shortcircuit = true;
      continue;
    }
    if (arg == "--profile") {
      out.profile = true;
      continue;
    }
    if (auto v = ArgValue(arg, "--profile-trace")) {
      out.profile_trace = *v;
      out.profile = true;
      continue;
    }
    if (auto v = ArgValue(arg, "--metrics-out")) {
      out.metrics_out = *v;
      continue;
    }
    if (auto v = ArgValue(arg, "--metrics-format")) {
      if (*v != "json" && *v != "prom") {
        error = "unknown metrics format: " + *v;
        return false;
      }
      out.metrics_format = *v;
      continue;
    }
    if (auto v = ArgValue(arg, "--sweep")) {
      std::stringstream ss(*v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        try {
          out.sweep.push_back(std::stod(item));
        } catch (const std::exception&) {
          error = "bad --sweep rate: " + item;
          return false;
        }
      }
      if (out.sweep.empty()) {
        error = "--sweep needs at least one rate";
        return false;
      }
      continue;
    }
    auto number = [&](const char* key, auto& field) -> bool {
      if (auto v = ArgValue(arg, key)) {
        field = static_cast<std::decay_t<decltype(field)>>(std::stod(*v));
        return true;
      }
      return false;
    };
    if (number("--rate", out.rate) || number("--duration", out.duration_s) ||
        number("--peers", out.peers) ||
        number("--committing-peers", out.committing_peers) ||
        number("--clients", out.clients) || number("--osns", out.osns) ||
        number("--brokers", out.brokers) ||
        number("--zookeepers", out.zookeepers) ||
        number("--channels", out.channels) ||
        number("--value-size", out.value_size) ||
        number("--key-space", out.key_space) ||
        number("--batch-size", out.batch_size) ||
        number("--batch-timeout", out.batch_timeout_s) ||
        number("--seed", out.seed) || number("--osn-queue", out.osn_queue) ||
        number("--endorser-queue", out.endorser_queue) ||
        number("--committer-blocks", out.committer_blocks) ||
        number("--retry-after-ms", out.retry_after_ms) ||
        number("--flow-window", out.flow_window) ||
        number("--pace-tps", out.pace_tps) || number("--jobs", out.jobs) ||
        number("--des-threads", out.des_threads) ||
        number("--metrics-period-ms", out.metrics_period_ms) ||
        number("--retain-blocks", out.retain_blocks) ||
        number("--history-per-key", out.history_per_key) ||
        number("--opt-vscc-workers", out.optimizations.vscc_workers)) {
      continue;
    }
    error = "unknown argument: " + arg;
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!Parse(argc, argv, cli, error)) {
    std::cerr << "error: " << error << "\n\n";
    PrintHelp();
    return 2;
  }
  if (cli.help) {
    PrintHelp();
    return 0;
  }

  fabric::ExperimentConfig config;
  config.network.topology.ordering = cli.ordering;
  config.network.topology.endorsing_peers = cli.peers;
  config.network.topology.committing_peers = cli.committing_peers;
  config.network.topology.clients = cli.clients;
  config.network.topology.osns = cli.osns;
  config.network.topology.kafka_brokers = cli.brokers;
  config.network.topology.zookeepers = cli.zookeepers;
  config.network.channels = cli.channels;
  config.network.channel.policy_expr = cli.policy;
  config.network.channel.batch.max_message_count = cli.batch_size;
  config.network.channel.batch.batch_timeout =
      sim::FromSeconds(cli.batch_timeout_s);
  config.network.seed = cli.seed;
  config.workload.kind = cli.workload;
  config.workload.rate_tps = cli.rate;
  config.workload.duration = sim::FromSeconds(cli.duration_s);
  config.workload.value_size = cli.value_size;
  config.workload.key_space = cli.key_space;
  config.faults = cli.faults;
  config.check_invariants = cli.check_invariants;
  config.network.failpoints = cli.failpoints;
  config.streaming_stats = cli.streaming_stats;
  config.profile = cli.profile;
  config.network.retention.ledger_blocks = cli.retain_blocks;
  config.network.retention.osn_history_blocks =
      static_cast<std::size_t>(cli.retain_blocks);
  config.network.retention.history_per_key = cli.history_per_key;
  config.network.optimizations = cli.optimizations;
  config.metrics_period = sim::FromMillis(cli.metrics_period_ms);
  config.des_threads = std::max(1, cli.des_threads);

  if (!cli.overload.empty()) {
    fabric::OverloadOptions& ov = config.network.overload;
    ov.enabled = true;
    ov.policy = cli.overload == "drop-oldest" ? sim::OverloadPolicy::kDropOldest
                : cli.overload == "block"     ? sim::OverloadPolicy::kBlock
                                              : sim::OverloadPolicy::kReject;
    ov.osn_max_inflight = cli.osn_queue;
    ov.osn_max_waiting = cli.osn_queue;
    ov.endorser_max_inflight = cli.endorser_queue;
    ov.endorser_max_waiting = cli.endorser_queue * 4;
    ov.committer_max_blocks = cli.committer_blocks;
    ov.retry_after = sim::FromMillis(cli.retry_after_ms);
    if (cli.flow_window > 0) {
      ov.flow.enabled = true;
      ov.flow.initial_window = cli.flow_window;
      ov.flow.pace_tps = cli.pace_tps;
    }
  }

  // Validate the fault spec before the run so a typo fails fast.
  if (!cli.faults.empty()) {
    try {
      (void)faults::FaultSchedule::Parse(cli.faults);
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: bad --faults spec: " << e.what() << "\n";
      return 2;
    }
  }

  // Sweep mode: the base configuration once per arrival rate, fanned out
  // over --jobs host threads, one summary row per rate.
  if (!cli.sweep.empty()) {
    if (!cli.trace_out.empty() || !cli.telemetry_csv.empty() ||
        !cli.faults.empty() || !cli.metrics_out.empty() ||
        !cli.profile_trace.empty()) {
      std::cerr << "error: --sweep cannot be combined with --trace-out, "
                   "--telemetry-csv, --faults, --metrics-out, or "
                   "--profile-trace\n";
      return 2;
    }
    std::vector<runner::SweepPoint> points;
    for (double rate : cli.sweep) {
      fabric::ExperimentConfig point = config;
      point.workload.rate_tps = rate;
      points.push_back({std::move(point), metrics::Fmt(rate, 1) + " tps"});
    }
    runner::SweepOptions options;
    options.jobs = cli.jobs;
    const auto outcomes = runner::RunSweep(std::move(points), options);

    metrics::Table table({"rate_tps", "committed_tps", "goodput_tps",
                          "e2e_latency_s", "e2e_p95_s", "block_time_s",
                          "chain_audit"});
    bool all_ok = true;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const auto& res = outcomes[i].result;
      const auto& rep = res.report;
      all_ok = all_ok && res.chain_audit_ok;
      table.AddRow({metrics::Fmt(cli.sweep[i], 1),
                    metrics::Fmt(rep.end_to_end.throughput_tps, 1),
                    metrics::Fmt(rep.goodput_tps, 1),
                    metrics::Fmt(rep.end_to_end.mean_latency_s, 3),
                    metrics::Fmt(rep.end_to_end.p95_latency_s, 3),
                    metrics::Fmt(rep.mean_block_time_s, 2),
                    res.chain_audit_ok ? "OK" : "FAILED"});
    }
    if (cli.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    return all_ok ? 0 : 1;
  }

  // Open output files up front so a bad path fails before the run, not after.
  std::optional<obs::Tracer> tracer;
  std::ofstream trace_os;
  if (!cli.trace_out.empty()) {
    trace_os.open(cli.trace_out);
    if (!trace_os) {
      std::cerr << "error: cannot write " << cli.trace_out << "\n";
      return 2;
    }
    tracer.emplace();
    config.network.tracer = &*tracer;
  }
  std::optional<obs::TelemetrySampler> telemetry;
  std::ofstream telemetry_os;
  if (!cli.telemetry_csv.empty()) {
    telemetry_os.open(cli.telemetry_csv);
    if (!telemetry_os) {
      std::cerr << "error: cannot write " << cli.telemetry_csv << "\n";
      return 2;
    }
    telemetry.emplace();
    config.telemetry = &*telemetry;
  }
  metrics::Registry registry;
  std::ofstream metrics_os;
  if (!cli.metrics_out.empty()) {
    metrics_os.open(cli.metrics_out);
    if (!metrics_os) {
      std::cerr << "error: cannot write " << cli.metrics_out << "\n";
      return 2;
    }
    config.registry = &registry;
  }
  sim::DesProfiler profiler;
  std::ofstream profile_os;
  if (!cli.profile_trace.empty()) {
    profile_os.open(cli.profile_trace);
    if (!profile_os) {
      std::cerr << "error: cannot write " << cli.profile_trace << "\n";
      return 2;
    }
    config.profiler = &profiler;
  }

  const auto result = fabric::RunExperiment(config);
  const auto& r = result.report;

  if (tracer) tracer->ExportChromeTrace(trace_os);
  if (telemetry) telemetry->WriteCsv(telemetry_os);
  if (!cli.metrics_out.empty()) {
    if (cli.metrics_format == "prom") {
      registry.WritePrometheus(metrics_os);
    } else {
      registry.WriteJson(metrics_os);
    }
  }
  if (!cli.profile_trace.empty()) profiler.WriteChromeTrace(profile_os);

  metrics::Table table({"metric", "value"});
  table.AddRow({"ordering", fabric::OrderingTypeName(cli.ordering)});
  table.AddRow({"offered_tps", metrics::Fmt(cli.rate, 1)});
  table.AddRow({"committed_tps", metrics::Fmt(r.end_to_end.throughput_tps, 1)});
  table.AddRow({"e2e_latency_s", metrics::Fmt(r.end_to_end.mean_latency_s, 3)});
  table.AddRow({"e2e_p95_s", metrics::Fmt(r.end_to_end.p95_latency_s, 3)});
  table.AddRow({"execute_latency_s", metrics::Fmt(r.execute.mean_latency_s, 3)});
  table.AddRow({"order_latency_s", metrics::Fmt(r.order.mean_latency_s, 3)});
  table.AddRow(
      {"validate_latency_s", metrics::Fmt(r.validate.mean_latency_s, 3)});
  table.AddRow({"execute_tps", metrics::Fmt(r.execute.throughput_tps, 1)});
  table.AddRow({"order_tps", metrics::Fmt(r.order.throughput_tps, 1)});
  table.AddRow({"validate_tps", metrics::Fmt(r.validate.throughput_tps, 1)});
  table.AddRow({"block_time_s", metrics::Fmt(r.mean_block_time_s, 2)});
  table.AddRow({"txs_per_block", metrics::Fmt(r.mean_block_size, 1)});
  table.AddRow({"invalid_txs", std::to_string(r.invalid)});
  table.AddRow({"rejected_txs", std::to_string(result.client_rejected)});
  table.AddRow({"goodput_tps", metrics::Fmt(r.goodput_tps, 1)});
  table.AddRow({"rejection_rate", metrics::Fmt(r.rejection_rate, 3)});
  table.AddRow({"shed_txs", std::to_string(r.shed)});
  if (!cli.overload.empty()) {
    table.AddRow({"overload_policy", cli.overload});
    table.AddRow({"osn_shed", std::to_string(result.osn_shed)});
    table.AddRow({"endorser_shed", std::to_string(result.endorser_shed)});
    table.AddRow(
        {"committer_deferred", std::to_string(result.committer_deferred)});
  }
  if (result.rejected_blocks + result.duplicate_tx_rejects +
          result.byz_quarantines + result.bad_endorsements >
      0) {
    // Byzantine-defense accounting; all-zero (and hidden) on honest runs.
    table.AddRow({"rejected_blocks", std::to_string(result.rejected_blocks)});
    table.AddRow({"duplicate_tx_rejects",
                  std::to_string(result.duplicate_tx_rejects)});
    table.AddRow(
        {"byz_quarantines", std::to_string(result.byz_quarantines)});
    table.AddRow(
        {"bad_endorsements", std::to_string(result.bad_endorsements)});
  }
  table.AddRow({"chain_height", std::to_string(result.chain_height)});
  table.AddRow({"chain_audit", result.chain_audit_ok ? "OK" : "FAILED"});
  table.AddRow({"generated_rate_tps", metrics::Fmt(result.generated_rate_tps, 1)});
  table.AddRow({"rate_check_fraction",
                metrics::Fmt(result.generated_rate_check, 2)});
  table.AddRow({"messages_sent", std::to_string(result.messages_sent)});
  table.AddRow(
      {"MB_on_wire",
       metrics::Fmt(static_cast<double>(result.bytes_sent) / 1e6, 1)});

  if (cli.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  if (result.attribution) {
    if (!cli.csv) std::cout << "\nBottleneck attribution:\n";
    obs::PrintAttribution(*result.attribution, std::cout, cli.csv);
  }
  if (cli.profile && result.profile) {
    const sim::ProfileReport& prof = *result.profile;
    if (!cli.csv) {
      std::cout << "\nHost profile (" << prof.total_events << " events, "
                << metrics::Fmt(prof.events_per_sec / 1e6, 2) << "M events/s):\n";
    }
    metrics::Table ptable({"handler", "count", "host_ms", "frac"});
    const std::size_t topn = std::min<std::size_t>(prof.entries.size(), 10);
    for (std::size_t i = 0; i < topn; ++i) {
      const sim::ProfileEntry& e = prof.entries[i];
      ptable.AddRow(
          {e.name, std::to_string(e.count),
           metrics::Fmt(static_cast<double>(e.total_ns) / 1e6, 2),
           metrics::Fmt(prof.total_ns > 0
                            ? static_cast<double>(e.total_ns) /
                                  static_cast<double>(prof.total_ns)
                            : 0.0,
                        3)});
    }
    if (cli.csv) {
      ptable.PrintCsv(std::cout);
    } else {
      ptable.Print(std::cout);
    }
  }

  bool invariants_ok = true;
  if (result.invariants) {
    invariants_ok = result.invariants->Ok();
    if (cli.faults.empty()) {
      std::cout << "\nInvariants: " << result.invariants->Summary();
    }
  }
  if (!cli.invariants_out.empty()) {
    bench::Json root = bench::Json::MakeObject();
    root["ok"] = result.chain_audit_ok && invariants_ok;
    root["chain_audit_ok"] = result.chain_audit_ok;
    bench::Json violations = bench::Json::MakeArray();
    if (result.invariants) {
      const faults::InvariantReport& report = *result.invariants;
      root["chains_audited"] = std::uint64_t{report.chains_audited};
      root["blocks_compared"] = std::uint64_t{report.blocks_compared};
      root["txs_checked"] = std::uint64_t{report.txs_checked};
      for (const faults::InvariantViolation& v : report.violations) {
        bench::Json entry = bench::Json::MakeObject();
        entry["invariant"] = v.invariant;
        entry["detail"] = v.detail;
        violations.AsArray().push_back(std::move(entry));
      }
    }
    root["violations"] = std::move(violations);
    if (result.recovery) root["stalled"] = result.recovery->stalled;
    std::ofstream os(cli.invariants_out);
    if (!os) {
      std::cerr << "error: cannot write " << cli.invariants_out << "\n";
      return 2;
    }
    os << root.Dump();
  }
  if (!cli.faults.empty()) {
    std::cout << "\nFault timeline:\n";
    for (const auto& entry : result.fault_log) {
      std::cout << "  " << metrics::Fmt(sim::ToSeconds(entry.at), 2) << "s  "
                << entry.what << "\n";
    }
    if (result.invariants) {
      std::cout << "\nInvariants: " << result.invariants->Summary();
    }
    if (result.recovery) {
      const auto& rec = *result.recovery;
      std::cout << "\nRecovery:\n"
                << "  pre_fault_tps    " << metrics::Fmt(rec.pre_fault_tps, 1)
                << "\n  dip_tps          " << metrics::Fmt(rec.dip_tps, 1)
                << "\n  recovered_tps    " << metrics::Fmt(rec.recovered_tps, 1)
                << "\n  time_to_recover  ";
      if (rec.stalled) {
        std::cout << "never (permanent stall detected)";
      } else if (rec.time_to_recover_s < 0) {
        std::cout << "not reached in window";
      } else {
        std::cout << metrics::Fmt(rec.time_to_recover_s, 1) << "s";
      }
      std::cout << "\n";
    }
  }
  return (result.chain_audit_ok && invariants_ok) ? 0 : 1;
}
