file(REMOVE_RECURSE
  "CMakeFiles/crypto_signature_test.dir/crypto_signature_test.cpp.o"
  "CMakeFiles/crypto_signature_test.dir/crypto_signature_test.cpp.o.d"
  "crypto_signature_test"
  "crypto_signature_test.pdb"
  "crypto_signature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
