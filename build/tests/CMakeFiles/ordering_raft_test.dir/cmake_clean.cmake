file(REMOVE_RECURSE
  "CMakeFiles/ordering_raft_test.dir/ordering_raft_test.cpp.o"
  "CMakeFiles/ordering_raft_test.dir/ordering_raft_test.cpp.o.d"
  "ordering_raft_test"
  "ordering_raft_test.pdb"
  "ordering_raft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_raft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
