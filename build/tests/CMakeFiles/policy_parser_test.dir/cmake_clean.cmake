file(REMOVE_RECURSE
  "CMakeFiles/policy_parser_test.dir/policy_parser_test.cpp.o"
  "CMakeFiles/policy_parser_test.dir/policy_parser_test.cpp.o.d"
  "policy_parser_test"
  "policy_parser_test.pdb"
  "policy_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
