file(REMOVE_RECURSE
  "CMakeFiles/peer_committer_test.dir/peer_committer_test.cpp.o"
  "CMakeFiles/peer_committer_test.dir/peer_committer_test.cpp.o.d"
  "peer_committer_test"
  "peer_committer_test.pdb"
  "peer_committer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_committer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
