file(REMOVE_RECURSE
  "CMakeFiles/peer_endorser_test.dir/peer_endorser_test.cpp.o"
  "CMakeFiles/peer_endorser_test.dir/peer_endorser_test.cpp.o.d"
  "peer_endorser_test"
  "peer_endorser_test.pdb"
  "peer_endorser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_endorser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
