# Empty compiler generated dependencies file for sim_validation_test.
# This may be replaced when dependencies are built.
