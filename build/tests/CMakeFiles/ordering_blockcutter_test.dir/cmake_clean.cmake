file(REMOVE_RECURSE
  "CMakeFiles/ordering_blockcutter_test.dir/ordering_blockcutter_test.cpp.o"
  "CMakeFiles/ordering_blockcutter_test.dir/ordering_blockcutter_test.cpp.o.d"
  "ordering_blockcutter_test"
  "ordering_blockcutter_test.pdb"
  "ordering_blockcutter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_blockcutter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
