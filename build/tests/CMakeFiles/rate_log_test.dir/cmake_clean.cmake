file(REMOVE_RECURSE
  "CMakeFiles/rate_log_test.dir/rate_log_test.cpp.o"
  "CMakeFiles/rate_log_test.dir/rate_log_test.cpp.o.d"
  "rate_log_test"
  "rate_log_test.pdb"
  "rate_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
