# Empty compiler generated dependencies file for rate_log_test.
# This may be replaced when dependencies are built.
