file(REMOVE_RECURSE
  "CMakeFiles/crypto_identity_test.dir/crypto_identity_test.cpp.o"
  "CMakeFiles/crypto_identity_test.dir/crypto_identity_test.cpp.o.d"
  "crypto_identity_test"
  "crypto_identity_test.pdb"
  "crypto_identity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
