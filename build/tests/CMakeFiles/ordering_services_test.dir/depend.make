# Empty dependencies file for ordering_services_test.
# This may be replaced when dependencies are built.
