file(REMOVE_RECURSE
  "CMakeFiles/ordering_services_test.dir/ordering_services_test.cpp.o"
  "CMakeFiles/ordering_services_test.dir/ordering_services_test.cpp.o.d"
  "ordering_services_test"
  "ordering_services_test.pdb"
  "ordering_services_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
