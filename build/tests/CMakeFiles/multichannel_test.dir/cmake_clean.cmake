file(REMOVE_RECURSE
  "CMakeFiles/multichannel_test.dir/multichannel_test.cpp.o"
  "CMakeFiles/multichannel_test.dir/multichannel_test.cpp.o.d"
  "multichannel_test"
  "multichannel_test.pdb"
  "multichannel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multichannel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
