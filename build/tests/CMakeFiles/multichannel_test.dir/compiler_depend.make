# Empty compiler generated dependencies file for multichannel_test.
# This may be replaced when dependencies are built.
