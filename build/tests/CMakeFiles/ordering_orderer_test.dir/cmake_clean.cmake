file(REMOVE_RECURSE
  "CMakeFiles/ordering_orderer_test.dir/ordering_orderer_test.cpp.o"
  "CMakeFiles/ordering_orderer_test.dir/ordering_orderer_test.cpp.o.d"
  "ordering_orderer_test"
  "ordering_orderer_test.pdb"
  "ordering_orderer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_orderer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
