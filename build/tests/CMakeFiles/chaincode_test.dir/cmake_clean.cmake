file(REMOVE_RECURSE
  "CMakeFiles/chaincode_test.dir/chaincode_test.cpp.o"
  "CMakeFiles/chaincode_test.dir/chaincode_test.cpp.o.d"
  "chaincode_test"
  "chaincode_test.pdb"
  "chaincode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaincode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
