# Empty compiler generated dependencies file for ordering_comparison.
# This may be replaced when dependencies are built.
