file(REMOVE_RECURSE
  "CMakeFiles/ordering_comparison.dir/ordering_comparison.cpp.o"
  "CMakeFiles/ordering_comparison.dir/ordering_comparison.cpp.o.d"
  "ordering_comparison"
  "ordering_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
