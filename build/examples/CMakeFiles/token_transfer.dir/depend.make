# Empty dependencies file for token_transfer.
# This may be replaced when dependencies are built.
