file(REMOVE_RECURSE
  "CMakeFiles/multichannel_app.dir/multichannel_app.cpp.o"
  "CMakeFiles/multichannel_app.dir/multichannel_app.cpp.o.d"
  "multichannel_app"
  "multichannel_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multichannel_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
