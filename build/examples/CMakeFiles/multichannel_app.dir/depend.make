# Empty dependencies file for multichannel_app.
# This may be replaced when dependencies are built.
