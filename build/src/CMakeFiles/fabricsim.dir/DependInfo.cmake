
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chaincode/kvwrite.cpp" "src/CMakeFiles/fabricsim.dir/chaincode/kvwrite.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/kvwrite.cpp.o.d"
  "/root/repo/src/chaincode/shim.cpp" "src/CMakeFiles/fabricsim.dir/chaincode/shim.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/shim.cpp.o.d"
  "/root/repo/src/chaincode/smallbank.cpp" "src/CMakeFiles/fabricsim.dir/chaincode/smallbank.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/smallbank.cpp.o.d"
  "/root/repo/src/chaincode/token.cpp" "src/CMakeFiles/fabricsim.dir/chaincode/token.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/token.cpp.o.d"
  "/root/repo/src/client/client.cpp" "src/CMakeFiles/fabricsim.dir/client/client.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/client/client.cpp.o.d"
  "/root/repo/src/client/workload.cpp" "src/CMakeFiles/fabricsim.dir/client/workload.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/client/workload.cpp.o.d"
  "/root/repo/src/crypto/ca.cpp" "src/CMakeFiles/fabricsim.dir/crypto/ca.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/crypto/ca.cpp.o.d"
  "/root/repo/src/crypto/identity.cpp" "src/CMakeFiles/fabricsim.dir/crypto/identity.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/crypto/identity.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/CMakeFiles/fabricsim.dir/crypto/merkle.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/crypto/merkle.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/fabricsim.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/signature.cpp" "src/CMakeFiles/fabricsim.dir/crypto/signature.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/crypto/signature.cpp.o.d"
  "/root/repo/src/fabric/calibration.cpp" "src/CMakeFiles/fabricsim.dir/fabric/calibration.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/fabric/calibration.cpp.o.d"
  "/root/repo/src/fabric/channel.cpp" "src/CMakeFiles/fabricsim.dir/fabric/channel.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/fabric/channel.cpp.o.d"
  "/root/repo/src/fabric/experiment.cpp" "src/CMakeFiles/fabricsim.dir/fabric/experiment.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/fabric/experiment.cpp.o.d"
  "/root/repo/src/fabric/network_builder.cpp" "src/CMakeFiles/fabricsim.dir/fabric/network_builder.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/fabric/network_builder.cpp.o.d"
  "/root/repo/src/fabric/topology.cpp" "src/CMakeFiles/fabricsim.dir/fabric/topology.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/fabric/topology.cpp.o.d"
  "/root/repo/src/ledger/block_store.cpp" "src/CMakeFiles/fabricsim.dir/ledger/block_store.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/block_store.cpp.o.d"
  "/root/repo/src/ledger/blockchain.cpp" "src/CMakeFiles/fabricsim.dir/ledger/blockchain.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/blockchain.cpp.o.d"
  "/root/repo/src/ledger/history_index.cpp" "src/CMakeFiles/fabricsim.dir/ledger/history_index.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/history_index.cpp.o.d"
  "/root/repo/src/ledger/mvcc.cpp" "src/CMakeFiles/fabricsim.dir/ledger/mvcc.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/mvcc.cpp.o.d"
  "/root/repo/src/ledger/state_db.cpp" "src/CMakeFiles/fabricsim.dir/ledger/state_db.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/state_db.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/CMakeFiles/fabricsim.dir/metrics/histogram.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/metrics/histogram.cpp.o.d"
  "/root/repo/src/metrics/phase_stats.cpp" "src/CMakeFiles/fabricsim.dir/metrics/phase_stats.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/metrics/phase_stats.cpp.o.d"
  "/root/repo/src/metrics/rate_log.cpp" "src/CMakeFiles/fabricsim.dir/metrics/rate_log.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/metrics/rate_log.cpp.o.d"
  "/root/repo/src/metrics/reporter.cpp" "src/CMakeFiles/fabricsim.dir/metrics/reporter.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/metrics/reporter.cpp.o.d"
  "/root/repo/src/ordering/block_cutter.cpp" "src/CMakeFiles/fabricsim.dir/ordering/block_cutter.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/block_cutter.cpp.o.d"
  "/root/repo/src/ordering/deliver.cpp" "src/CMakeFiles/fabricsim.dir/ordering/deliver.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/deliver.cpp.o.d"
  "/root/repo/src/ordering/kafka_broker.cpp" "src/CMakeFiles/fabricsim.dir/ordering/kafka_broker.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/kafka_broker.cpp.o.d"
  "/root/repo/src/ordering/kafka_orderer.cpp" "src/CMakeFiles/fabricsim.dir/ordering/kafka_orderer.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/kafka_orderer.cpp.o.d"
  "/root/repo/src/ordering/osn_base.cpp" "src/CMakeFiles/fabricsim.dir/ordering/osn_base.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/osn_base.cpp.o.d"
  "/root/repo/src/ordering/raft.cpp" "src/CMakeFiles/fabricsim.dir/ordering/raft.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/raft.cpp.o.d"
  "/root/repo/src/ordering/raft_orderer.cpp" "src/CMakeFiles/fabricsim.dir/ordering/raft_orderer.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/raft_orderer.cpp.o.d"
  "/root/repo/src/ordering/solo.cpp" "src/CMakeFiles/fabricsim.dir/ordering/solo.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/solo.cpp.o.d"
  "/root/repo/src/ordering/zookeeper.cpp" "src/CMakeFiles/fabricsim.dir/ordering/zookeeper.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/zookeeper.cpp.o.d"
  "/root/repo/src/peer/committer.cpp" "src/CMakeFiles/fabricsim.dir/peer/committer.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/peer/committer.cpp.o.d"
  "/root/repo/src/peer/endorser.cpp" "src/CMakeFiles/fabricsim.dir/peer/endorser.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/peer/endorser.cpp.o.d"
  "/root/repo/src/peer/peer_node.cpp" "src/CMakeFiles/fabricsim.dir/peer/peer_node.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/peer/peer_node.cpp.o.d"
  "/root/repo/src/policy/evaluator.cpp" "src/CMakeFiles/fabricsim.dir/policy/evaluator.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/policy/evaluator.cpp.o.d"
  "/root/repo/src/policy/parser.cpp" "src/CMakeFiles/fabricsim.dir/policy/parser.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/policy/parser.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/CMakeFiles/fabricsim.dir/policy/policy.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/policy/policy.cpp.o.d"
  "/root/repo/src/proto/block.cpp" "src/CMakeFiles/fabricsim.dir/proto/block.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/proto/block.cpp.o.d"
  "/root/repo/src/proto/bytes.cpp" "src/CMakeFiles/fabricsim.dir/proto/bytes.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/proto/bytes.cpp.o.d"
  "/root/repo/src/proto/proposal.cpp" "src/CMakeFiles/fabricsim.dir/proto/proposal.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/proto/proposal.cpp.o.d"
  "/root/repo/src/proto/rwset.cpp" "src/CMakeFiles/fabricsim.dir/proto/rwset.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/proto/rwset.cpp.o.d"
  "/root/repo/src/proto/transaction.cpp" "src/CMakeFiles/fabricsim.dir/proto/transaction.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/proto/transaction.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/fabricsim.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/fabricsim.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/fabricsim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/fabricsim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/fabricsim.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
