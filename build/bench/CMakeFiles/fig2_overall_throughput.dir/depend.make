# Empty dependencies file for fig2_overall_throughput.
# This may be replaced when dependencies are built.
