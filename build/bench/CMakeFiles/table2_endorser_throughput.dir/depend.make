# Empty dependencies file for table2_endorser_throughput.
# This may be replaced when dependencies are built.
