# Empty dependencies file for table3_endorser_latency.
# This may be replaced when dependencies are built.
