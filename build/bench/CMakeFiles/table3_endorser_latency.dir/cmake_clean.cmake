file(REMOVE_RECURSE
  "CMakeFiles/table3_endorser_latency.dir/table3_endorser_latency.cpp.o"
  "CMakeFiles/table3_endorser_latency.dir/table3_endorser_latency.cpp.o.d"
  "table3_endorser_latency"
  "table3_endorser_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_endorser_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
