file(REMOVE_RECURSE
  "CMakeFiles/fig4_phase_throughput_or.dir/fig4_phase_throughput_or.cpp.o"
  "CMakeFiles/fig4_phase_throughput_or.dir/fig4_phase_throughput_or.cpp.o.d"
  "fig4_phase_throughput_or"
  "fig4_phase_throughput_or.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_phase_throughput_or.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
