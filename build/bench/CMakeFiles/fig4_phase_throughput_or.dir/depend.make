# Empty dependencies file for fig4_phase_throughput_or.
# This may be replaced when dependencies are built.
