# Empty dependencies file for fig7_phase_latency_and.
# This may be replaced when dependencies are built.
