file(REMOVE_RECURSE
  "CMakeFiles/fig7_phase_latency_and.dir/fig7_phase_latency_and.cpp.o"
  "CMakeFiles/fig7_phase_latency_and.dir/fig7_phase_latency_and.cpp.o.d"
  "fig7_phase_latency_and"
  "fig7_phase_latency_and.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_phase_latency_and.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
