file(REMOVE_RECURSE
  "CMakeFiles/fig8_osn_scalability.dir/fig8_osn_scalability.cpp.o"
  "CMakeFiles/fig8_osn_scalability.dir/fig8_osn_scalability.cpp.o.d"
  "fig8_osn_scalability"
  "fig8_osn_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_osn_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
