file(REMOVE_RECURSE
  "CMakeFiles/ablation_blockcutter.dir/ablation_blockcutter.cpp.o"
  "CMakeFiles/ablation_blockcutter.dir/ablation_blockcutter.cpp.o.d"
  "ablation_blockcutter"
  "ablation_blockcutter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blockcutter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
