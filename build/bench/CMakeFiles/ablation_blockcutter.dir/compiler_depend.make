# Empty compiler generated dependencies file for ablation_blockcutter.
# This may be replaced when dependencies are built.
