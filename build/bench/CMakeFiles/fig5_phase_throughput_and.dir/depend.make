# Empty dependencies file for fig5_phase_throughput_and.
# This may be replaced when dependencies are built.
