file(REMOVE_RECURSE
  "CMakeFiles/fig5_phase_throughput_and.dir/fig5_phase_throughput_and.cpp.o"
  "CMakeFiles/fig5_phase_throughput_and.dir/fig5_phase_throughput_and.cpp.o.d"
  "fig5_phase_throughput_and"
  "fig5_phase_throughput_and.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_phase_throughput_and.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
