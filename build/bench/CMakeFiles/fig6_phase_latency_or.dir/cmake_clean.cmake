file(REMOVE_RECURSE
  "CMakeFiles/fig6_phase_latency_or.dir/fig6_phase_latency_or.cpp.o"
  "CMakeFiles/fig6_phase_latency_or.dir/fig6_phase_latency_or.cpp.o.d"
  "fig6_phase_latency_or"
  "fig6_phase_latency_or.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_phase_latency_or.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
