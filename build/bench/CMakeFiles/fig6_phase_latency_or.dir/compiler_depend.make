# Empty compiler generated dependencies file for fig6_phase_latency_or.
# This may be replaced when dependencies are built.
