# Empty dependencies file for fig3_overall_latency.
# This may be replaced when dependencies are built.
