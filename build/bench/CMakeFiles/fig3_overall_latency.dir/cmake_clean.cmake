file(REMOVE_RECURSE
  "CMakeFiles/fig3_overall_latency.dir/fig3_overall_latency.cpp.o"
  "CMakeFiles/fig3_overall_latency.dir/fig3_overall_latency.cpp.o.d"
  "fig3_overall_latency"
  "fig3_overall_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_overall_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
