// Shared helpers for the paper-reproduction bench binaries.
//
// Each binary regenerates one table or figure of the paper. Binaries accept
// optional flags:
//   --quick            smaller sweeps / shorter windows (CI-friendly)
//   --smoke            smallest tier: the regression-gate sweep (subset of
//                      points, short windows); implies --quick durations
//   --csv              emit CSV instead of aligned tables
//   --attribution      trace every run and print the per-phase bottleneck
//                      attribution after each measurement point
//   --json <path>      write the machine-readable result file (schema in
//                      EXPERIMENTS.md) consumed by tools/bench_diff
//   --reps <n>         repeat each measurement point n times (plus one
//                      discarded warm-up rep) and report mean±stddev host
//                      wall clock; simulated results must be identical
//                      across reps or the run is flagged nondeterministic
//   --jobs <n>         run independent sweep points on n host threads
//                      (default: hardware concurrency; 1 = serial). The
//                      simulated results, stdout tables, and JSON point
//                      order are byte-identical at any job count — only
//                      host wall clock changes
//   --des-threads <n>  run each experiment's event loop on n threads under
//                      the conservative-PDES engine (default 1 = the exact
//                      serial scheduler). Simulated output is byte-identical
//                      at any thread count (CI enforces it); composes with
//                      --jobs (points x threads host parallelism)
//   --no-crypto-cache  single escape hatch for every crypto cache: disables
//                      the host-side signature-verification cache
//                      (simulated results must not change; see
//                      crypto/verify_cache.h) AND the --opt-msp-cache
//                      identity cache (every lookup then verifies in full
//                      at the uncached simulated cost; see
//                      crypto/msp_cache.h)
//   --profile          attach the host-side DES profiler to every point and
//                      emit the top-10 handler table under each point's
//                      "host.profile" (host-only; never gated)
//   --streaming        streaming (bounded-memory) TxTracker accounting; the
//                      simulated results are identical to full-record mode
//                      by construction, so baselines still match
//   --metrics-out <p>  attach a metrics registry to every point and write
//                      all per-point timelines (JSON object keyed by point
//                      label) to <p>; sampling rides observer events, so
//                      simulated results are unchanged
//   --metrics-period-ms <n>  registry sampling cadence (simulated ms,
//                      default 250)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/recorder.h"
#include "crypto/msp_cache.h"
#include "crypto/verify_cache.h"
#include "fabric/experiment.h"
#include "metrics/registry.h"
#include "metrics/reporter.h"
#include "obs/attribution.h"
#include "runner/sweep_runner.h"
#include "runner/thread_pool.h"

namespace benchutil {

struct Args {
  bool quick = false;
  bool smoke = false;
  bool csv = false;
  bool attribution = false;
  bool crypto_cache = true;
  bool profile = false;
  bool streaming = false;
  int reps = 1;
  int jobs = 0;  // resolved: 0 -> hardware concurrency
  int des_threads = 1;  // per-experiment PDES threads (1 = serial engine)
  int metrics_period_ms = 250;
  std::string json_path;
  std::string metrics_out;

  [[nodiscard]] const char* Mode() const {
    return smoke ? "smoke" : (quick ? "quick" : "full");
  }
};

/// Per-point metrics registries, keyed by point label; created by
/// Sweep::Add under --metrics-out, flushed by Finish. Each point owns its
/// registry, so parallel sweep workers never share one.
inline std::vector<std::pair<std::string,
                             std::unique_ptr<fabricsim::metrics::Registry>>>&
MetricsSlot() {
  static std::vector<
      std::pair<std::string, std::unique_ptr<fabricsim::metrics::Registry>>>
      slot;
  return slot;
}

/// The process-wide recorder; created by ParseArgs, flushed by Finish.
inline std::unique_ptr<fabricsim::bench::Recorder>& RecorderSlot() {
  static std::unique_ptr<fabricsim::bench::Recorder> slot;
  return slot;
}

inline Args ParseArgs(int argc, char** argv, const std::string& bench_name) {
  Args out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") out.quick = true;
    if (a == "--smoke") out.smoke = out.quick = true;
    if (a == "--csv") out.csv = true;
    if (a == "--attribution") out.attribution = true;
    if (a == "--no-crypto-cache") out.crypto_cache = false;
    if (a == "--profile") out.profile = true;
    if (a == "--streaming") out.streaming = true;
    if (a == "--json" && i + 1 < argc) out.json_path = argv[++i];
    if (a == "--metrics-out" && i + 1 < argc) out.metrics_out = argv[++i];
    if (a == "--metrics-period-ms" && i + 1 < argc) {
      out.metrics_period_ms = std::max(1, std::atoi(argv[++i]));
    }
    if (a == "--reps" && i + 1 < argc) {
      out.reps = std::max(1, std::atoi(argv[++i]));
    }
    if (a == "--jobs" && i + 1 < argc) {
      out.jobs = std::max(1, std::atoi(argv[++i]));
    }
    if (a == "--des-threads" && i + 1 < argc) {
      out.des_threads = std::max(1, std::atoi(argv[++i]));
    }
  }
  if (out.jobs <= 0) {
    out.jobs = static_cast<int>(fabricsim::runner::ThreadPool::DefaultJobs());
  }
  fabricsim::crypto::VerifyCache::Instance().SetEnabled(out.crypto_cache);
  RecorderSlot() = std::make_unique<fabricsim::bench::Recorder>(
      bench_name, out.Mode(), out.crypto_cache, out.reps, out.jobs);
  RecorderSlot()->SetDesThreads(out.des_threads);
  return out;
}

/// A batch of independent measurement points, run host-parallel.
///
/// Usage is plan-then-execute: queue every point of a sweep with Add(), then
/// Run() executes them on `--jobs` worker threads (each point a full
/// fabric::Experiment with its own scheduler/network/RNG) and returns the
/// results in submission order. Recording into the bench JSON, the
/// cross-rep determinism check, and attribution printing all happen on the
/// calling thread in submission order, so every observable output is
/// byte-identical to a serial (`--jobs 1`) run.
class Sweep {
 public:
  explicit Sweep(const Args& args) : args_(args) {}

  /// Queues one measurement point (label must be unique within the bench;
  /// it is the join key for baseline comparison). The global --profile /
  /// --streaming / --metrics-out flags are OR-ed in, so a bench can also
  /// set them per point (bench/soak does, to contrast the tracker modes).
  void Add(fabricsim::fabric::ExperimentConfig config, std::string label) {
    config.profile = config.profile || args_.profile;
    config.streaming_stats = config.streaming_stats || args_.streaming;
    if (config.des_threads <= 1) config.des_threads = args_.des_threads;
    if (!args_.metrics_out.empty() && config.registry == nullptr) {
      auto reg = std::make_unique<fabricsim::metrics::Registry>();
      config.registry = reg.get();
      config.metrics_period =
          fabricsim::sim::FromMillis(args_.metrics_period_ms);
      MetricsSlot().emplace_back(label, std::move(reg));
    }
    points_.push_back({std::move(config), std::move(label)});
  }

  [[nodiscard]] std::size_t Size() const { return points_.size(); }

  /// Runs all queued points and returns their results in submission order.
  /// The queue is left empty, so one Sweep can run several dependent
  /// batches (plan, Run, plan the next batch from the results, Run, ...).
  std::vector<fabricsim::fabric::ExperimentResult> Run() {
    fabricsim::runner::SweepOptions options;
    options.jobs = args_.jobs;
    options.reps = args_.reps;
    options.attribution = args_.attribution;
    std::vector<fabricsim::runner::PointOutcome> outcomes =
        fabricsim::runner::RunSweep(std::move(points_), options);
    points_.clear();

    std::vector<fabricsim::fabric::ExperimentResult> results;
    results.reserve(outcomes.size());
    for (fabricsim::runner::PointOutcome& outcome : outcomes) {
      if (!outcome.deterministic) {
        std::fprintf(stderr, "bench: NONDETERMINISM at %s %s\n",
                     outcome.label.c_str(), outcome.mismatch.c_str());
        RecorderSlot()->MarkNondeterministic();
      }
      fabricsim::bench::HostSample host;
      host.wall_s = std::move(outcome.wall_s);
      host.sched_events = outcome.result.sched_events;
      RecorderSlot()->AddPoint(outcome.label, outcome.result, host);
      if (outcome.result.attribution) {
        std::cout << "attribution @ " << outcome.label << ":\n";
        fabricsim::obs::PrintAttribution(*outcome.result.attribution,
                                         std::cout, args_.csv);
      }
      results.push_back(std::move(outcome.result));
    }
    return results;
  }

 private:
  const Args& args_;
  std::vector<fabricsim::runner::SweepPoint> points_;
};

/// Runs one measurement point and records it — the serial path for points
/// whose config depends on an earlier result (saturation probes). See
/// Sweep for batching independent points across cores.
inline fabricsim::fabric::ExperimentResult RunPoint(
    fabricsim::fabric::ExperimentConfig config, const Args& args,
    const std::string& label) {
  Sweep sweep(args);
  sweep.Add(std::move(config), label);
  return std::move(sweep.Run().front());
}

/// Writes the JSON result file if --json was given. Returns the process
/// exit code: nonzero when the bench failed, the write failed, or any
/// measurement point was nondeterministic.
inline int Finish(const Args& args, bool ok = true) {
  const auto& cache = fabricsim::crypto::VerifyCache::Instance();
  RecorderSlot()->SetVerifyCacheSample(
      {cache.Hits(), cache.Misses(), cache.Evictions(),
       static_cast<std::uint64_t>(cache.Size())});
  // MSP identity-cache aggregates (nonzero only when a point armed
  // --opt-msp-cache; the recorder omits the block otherwise).
  RecorderSlot()->SetMspCacheSample(
      {fabricsim::crypto::MspIdentityCache::GlobalHits(),
       fabricsim::crypto::MspIdentityCache::GlobalMisses(),
       fabricsim::crypto::MspIdentityCache::GlobalEvictions(), 0});
  if (!RecorderSlot()->Deterministic()) {
    std::cerr << "bench: determinism violation across repetitions\n";
    ok = false;
  }
  if (!args.json_path.empty() &&
      !RecorderSlot()->WriteFile(args.json_path)) {
    ok = false;
  }
  if (!args.metrics_out.empty()) {
    std::ofstream os(args.metrics_out);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   args.metrics_out.c_str());
      ok = false;
    } else {
      os << "{";
      bool first = true;
      for (const auto& [label, reg] : MetricsSlot()) {
        os << (first ? "\n" : ",\n") << '"' << label << "\": ";
        reg->WriteJson(os);
        first = false;
      }
      os << "}\n";
      if (!os) {
        std::fprintf(stderr, "bench: write to %s failed\n",
                     args.metrics_out.c_str());
        ok = false;
      }
    }
    MetricsSlot().clear();
  }
  return ok ? 0 : 1;
}

inline void PrintTable(const fabricsim::metrics::Table& table,
                       const Args& args) {
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
}

/// The arrival-rate sweep used by Figs. 2-7 (the paper sweeps to ~450 tps).
/// Smoke keeps one pre-knee and one at-knee point.
inline std::vector<double> RateSweep(const Args& args) {
  if (args.smoke) return {150, 250};
  if (args.quick) return {50, 150, 250, 350};
  return {25, 50, 100, 150, 200, 250, 300, 350, 400, 450};
}

/// Applies the default measurement durations (shorter with --quick/--smoke).
inline void Tune(fabricsim::fabric::ExperimentConfig& config,
                 const Args& args) {
  using fabricsim::sim::FromSeconds;
  config.workload.duration =
      FromSeconds(args.smoke ? 12 : (args.quick ? 20 : 30));
  config.warmup = FromSeconds(5);
  config.drain = FromSeconds(args.smoke ? 10 : 12);
}

inline const char* kOrderings[] = {"Solo", "Kafka", "Raft"};

inline fabricsim::fabric::OrderingType OrderingAt(int i) {
  using fabricsim::fabric::OrderingType;
  switch (i) {
    case 0:
      return OrderingType::kSolo;
    case 1:
      return OrderingType::kKafka;
    default:
      return OrderingType::kRaft;
  }
}

}  // namespace benchutil
