// Shared helpers for the paper-reproduction bench binaries.
//
// Each binary regenerates one table or figure of the paper. Binaries accept
// optional flags:
//   --quick            smaller sweeps / shorter windows (CI-friendly)
//   --smoke            smallest tier: the regression-gate sweep (subset of
//                      points, short windows); implies --quick durations
//   --csv              emit CSV instead of aligned tables
//   --attribution      trace every run and print the per-phase bottleneck
//                      attribution after each measurement point
//   --json <path>      write the machine-readable result file (schema in
//                      EXPERIMENTS.md) consumed by tools/bench_diff
//   --reps <n>         repeat each measurement point n times (plus one
//                      discarded warm-up rep) and report mean±stddev host
//                      wall clock; simulated results must be identical
//                      across reps or the run is flagged nondeterministic
//   --no-crypto-cache  disable the host-side signature-verification cache
//                      (simulated results must not change; see
//                      crypto/verify_cache.h)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/recorder.h"
#include "crypto/verify_cache.h"
#include "fabric/experiment.h"
#include "metrics/reporter.h"
#include "obs/attribution.h"
#include "obs/trace.h"

namespace benchutil {

struct Args {
  bool quick = false;
  bool smoke = false;
  bool csv = false;
  bool attribution = false;
  bool crypto_cache = true;
  int reps = 1;
  std::string json_path;

  [[nodiscard]] const char* Mode() const {
    return smoke ? "smoke" : (quick ? "quick" : "full");
  }
};

/// The process-wide recorder; created by ParseArgs, flushed by Finish.
inline std::unique_ptr<fabricsim::bench::Recorder>& RecorderSlot() {
  static std::unique_ptr<fabricsim::bench::Recorder> slot;
  return slot;
}

inline Args ParseArgs(int argc, char** argv, const std::string& bench_name) {
  Args out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") out.quick = true;
    if (a == "--smoke") out.smoke = out.quick = true;
    if (a == "--csv") out.csv = true;
    if (a == "--attribution") out.attribution = true;
    if (a == "--no-crypto-cache") out.crypto_cache = false;
    if (a == "--json" && i + 1 < argc) out.json_path = argv[++i];
    if (a == "--reps" && i + 1 < argc) {
      out.reps = std::max(1, std::atoi(argv[++i]));
    }
  }
  fabricsim::crypto::VerifyCache::Instance().SetEnabled(out.crypto_cache);
  RecorderSlot() = std::make_unique<fabricsim::bench::Recorder>(
      bench_name, out.Mode(), out.crypto_cache, out.reps);
  return out;
}

/// Runs one measurement point and records it (label must be unique within
/// the bench; it is the join key for baseline comparison).
///
/// With --reps > 1 the point runs reps+1 times: the first repetition warms
/// host-side caches and is discarded, the rest feed the mean±stddev wall
/// clock. Repetitions must agree on the chain head — the simulation is
/// deterministic — or the whole result file is flagged nondeterministic
/// (which fails the regression gate).
///
/// With --attribution, a fresh Tracer is attached for just this run
/// (bounding span memory across a sweep) and the per-phase latency
/// decomposition is printed under `label`.
inline fabricsim::fabric::ExperimentResult RunPoint(
    fabricsim::fabric::ExperimentConfig config, const Args& args,
    const std::string& label) {
  using Clock = std::chrono::steady_clock;
  std::optional<fabricsim::obs::Tracer> tracer;
  if (args.attribution) {
    tracer.emplace();
    config.network.tracer = &*tracer;
  }

  fabricsim::bench::HostSample host;
  std::optional<fabricsim::fabric::ExperimentResult> result;
  const int total_runs = args.reps > 1 ? args.reps + 1 : 1;
  for (int rep = 0; rep < total_runs; ++rep) {
    const auto t0 = Clock::now();
    auto r = fabricsim::fabric::RunExperiment(config);
    const std::chrono::duration<double> wall = Clock::now() - t0;
    const bool warmup_rep = args.reps > 1 && rep == 0;
    if (!warmup_rep) host.wall_s.push_back(wall.count());
    if (result && r.chain_head_hex != result->chain_head_hex) {
      std::fprintf(stderr,
                   "bench: NONDETERMINISM at %s rep %d: chain head %s != %s\n",
                   label.c_str(), rep, r.chain_head_hex.c_str(),
                   result->chain_head_hex.c_str());
      RecorderSlot()->MarkNondeterministic();
    }
    result = std::move(r);
  }
  host.sched_events = result->sched_events;
  RecorderSlot()->AddPoint(label, *result, host);

  if (result->attribution) {
    std::cout << "attribution @ " << label << ":\n";
    fabricsim::obs::PrintAttribution(*result->attribution, std::cout,
                                     args.csv);
  }
  return std::move(*result);
}

/// Writes the JSON result file if --json was given. Returns the process
/// exit code: nonzero when the bench failed, the write failed, or any
/// measurement point was nondeterministic.
inline int Finish(const Args& args, bool ok = true) {
  if (!RecorderSlot()->Deterministic()) {
    std::cerr << "bench: determinism violation across repetitions\n";
    ok = false;
  }
  if (!args.json_path.empty() &&
      !RecorderSlot()->WriteFile(args.json_path)) {
    ok = false;
  }
  return ok ? 0 : 1;
}

inline void PrintTable(const fabricsim::metrics::Table& table,
                       const Args& args) {
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
}

/// The arrival-rate sweep used by Figs. 2-7 (the paper sweeps to ~450 tps).
/// Smoke keeps one pre-knee and one at-knee point.
inline std::vector<double> RateSweep(const Args& args) {
  if (args.smoke) return {150, 250};
  if (args.quick) return {50, 150, 250, 350};
  return {25, 50, 100, 150, 200, 250, 300, 350, 400, 450};
}

/// Applies the default measurement durations (shorter with --quick/--smoke).
inline void Tune(fabricsim::fabric::ExperimentConfig& config,
                 const Args& args) {
  using fabricsim::sim::FromSeconds;
  config.workload.duration =
      FromSeconds(args.smoke ? 12 : (args.quick ? 20 : 30));
  config.warmup = FromSeconds(5);
  config.drain = FromSeconds(args.smoke ? 10 : 12);
}

inline const char* kOrderings[] = {"Solo", "Kafka", "Raft"};

inline fabricsim::fabric::OrderingType OrderingAt(int i) {
  using fabricsim::fabric::OrderingType;
  switch (i) {
    case 0:
      return OrderingType::kSolo;
    case 1:
      return OrderingType::kKafka;
    default:
      return OrderingType::kRaft;
  }
}

}  // namespace benchutil
