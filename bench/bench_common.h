// Shared helpers for the paper-reproduction bench binaries.
//
// Each binary regenerates one table or figure of the paper. Binaries accept
// optional flags:
//   --quick            smaller sweeps / shorter windows (CI-friendly)
//   --smoke            smallest tier: the regression-gate sweep (subset of
//                      points, short windows); implies --quick durations
//   --csv              emit CSV instead of aligned tables
//   --attribution      trace every run and print the per-phase bottleneck
//                      attribution after each measurement point
//   --json <path>      write the machine-readable result file (schema in
//                      EXPERIMENTS.md) consumed by tools/bench_diff
//   --reps <n>         repeat each measurement point n times (plus one
//                      discarded warm-up rep) and report mean±stddev host
//                      wall clock; simulated results must be identical
//                      across reps or the run is flagged nondeterministic
//   --jobs <n>         run independent sweep points on n host threads
//                      (default: hardware concurrency; 1 = serial). The
//                      simulated results, stdout tables, and JSON point
//                      order are byte-identical at any job count — only
//                      host wall clock changes
//   --no-crypto-cache  disable the host-side signature-verification cache
//                      (simulated results must not change; see
//                      crypto/verify_cache.h)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/recorder.h"
#include "crypto/verify_cache.h"
#include "fabric/experiment.h"
#include "metrics/reporter.h"
#include "obs/attribution.h"
#include "runner/sweep_runner.h"
#include "runner/thread_pool.h"

namespace benchutil {

struct Args {
  bool quick = false;
  bool smoke = false;
  bool csv = false;
  bool attribution = false;
  bool crypto_cache = true;
  int reps = 1;
  int jobs = 0;  // resolved: 0 -> hardware concurrency
  std::string json_path;

  [[nodiscard]] const char* Mode() const {
    return smoke ? "smoke" : (quick ? "quick" : "full");
  }
};

/// The process-wide recorder; created by ParseArgs, flushed by Finish.
inline std::unique_ptr<fabricsim::bench::Recorder>& RecorderSlot() {
  static std::unique_ptr<fabricsim::bench::Recorder> slot;
  return slot;
}

inline Args ParseArgs(int argc, char** argv, const std::string& bench_name) {
  Args out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") out.quick = true;
    if (a == "--smoke") out.smoke = out.quick = true;
    if (a == "--csv") out.csv = true;
    if (a == "--attribution") out.attribution = true;
    if (a == "--no-crypto-cache") out.crypto_cache = false;
    if (a == "--json" && i + 1 < argc) out.json_path = argv[++i];
    if (a == "--reps" && i + 1 < argc) {
      out.reps = std::max(1, std::atoi(argv[++i]));
    }
    if (a == "--jobs" && i + 1 < argc) {
      out.jobs = std::max(1, std::atoi(argv[++i]));
    }
  }
  if (out.jobs <= 0) {
    out.jobs = static_cast<int>(fabricsim::runner::ThreadPool::DefaultJobs());
  }
  fabricsim::crypto::VerifyCache::Instance().SetEnabled(out.crypto_cache);
  RecorderSlot() = std::make_unique<fabricsim::bench::Recorder>(
      bench_name, out.Mode(), out.crypto_cache, out.reps, out.jobs);
  return out;
}

/// A batch of independent measurement points, run host-parallel.
///
/// Usage is plan-then-execute: queue every point of a sweep with Add(), then
/// Run() executes them on `--jobs` worker threads (each point a full
/// fabric::Experiment with its own scheduler/network/RNG) and returns the
/// results in submission order. Recording into the bench JSON, the
/// cross-rep determinism check, and attribution printing all happen on the
/// calling thread in submission order, so every observable output is
/// byte-identical to a serial (`--jobs 1`) run.
class Sweep {
 public:
  explicit Sweep(const Args& args) : args_(args) {}

  /// Queues one measurement point (label must be unique within the bench;
  /// it is the join key for baseline comparison).
  void Add(fabricsim::fabric::ExperimentConfig config, std::string label) {
    points_.push_back({std::move(config), std::move(label)});
  }

  [[nodiscard]] std::size_t Size() const { return points_.size(); }

  /// Runs all queued points and returns their results in submission order.
  /// The queue is left empty, so one Sweep can run several dependent
  /// batches (plan, Run, plan the next batch from the results, Run, ...).
  std::vector<fabricsim::fabric::ExperimentResult> Run() {
    fabricsim::runner::SweepOptions options;
    options.jobs = args_.jobs;
    options.reps = args_.reps;
    options.attribution = args_.attribution;
    std::vector<fabricsim::runner::PointOutcome> outcomes =
        fabricsim::runner::RunSweep(std::move(points_), options);
    points_.clear();

    std::vector<fabricsim::fabric::ExperimentResult> results;
    results.reserve(outcomes.size());
    for (fabricsim::runner::PointOutcome& outcome : outcomes) {
      if (!outcome.deterministic) {
        std::fprintf(stderr, "bench: NONDETERMINISM at %s %s\n",
                     outcome.label.c_str(), outcome.mismatch.c_str());
        RecorderSlot()->MarkNondeterministic();
      }
      fabricsim::bench::HostSample host;
      host.wall_s = std::move(outcome.wall_s);
      host.sched_events = outcome.result.sched_events;
      RecorderSlot()->AddPoint(outcome.label, outcome.result, host);
      if (outcome.result.attribution) {
        std::cout << "attribution @ " << outcome.label << ":\n";
        fabricsim::obs::PrintAttribution(*outcome.result.attribution,
                                         std::cout, args_.csv);
      }
      results.push_back(std::move(outcome.result));
    }
    return results;
  }

 private:
  const Args& args_;
  std::vector<fabricsim::runner::SweepPoint> points_;
};

/// Runs one measurement point and records it — the serial path for points
/// whose config depends on an earlier result (saturation probes). See
/// Sweep for batching independent points across cores.
inline fabricsim::fabric::ExperimentResult RunPoint(
    fabricsim::fabric::ExperimentConfig config, const Args& args,
    const std::string& label) {
  Sweep sweep(args);
  sweep.Add(std::move(config), label);
  return std::move(sweep.Run().front());
}

/// Writes the JSON result file if --json was given. Returns the process
/// exit code: nonzero when the bench failed, the write failed, or any
/// measurement point was nondeterministic.
inline int Finish(const Args& args, bool ok = true) {
  const auto& cache = fabricsim::crypto::VerifyCache::Instance();
  RecorderSlot()->SetVerifyCacheSample(
      {cache.Hits(), cache.Misses(), cache.Evictions(),
       static_cast<std::uint64_t>(cache.Size())});
  if (!RecorderSlot()->Deterministic()) {
    std::cerr << "bench: determinism violation across repetitions\n";
    ok = false;
  }
  if (!args.json_path.empty() &&
      !RecorderSlot()->WriteFile(args.json_path)) {
    ok = false;
  }
  return ok ? 0 : 1;
}

inline void PrintTable(const fabricsim::metrics::Table& table,
                       const Args& args) {
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
}

/// The arrival-rate sweep used by Figs. 2-7 (the paper sweeps to ~450 tps).
/// Smoke keeps one pre-knee and one at-knee point.
inline std::vector<double> RateSweep(const Args& args) {
  if (args.smoke) return {150, 250};
  if (args.quick) return {50, 150, 250, 350};
  return {25, 50, 100, 150, 200, 250, 300, 350, 400, 450};
}

/// Applies the default measurement durations (shorter with --quick/--smoke).
inline void Tune(fabricsim::fabric::ExperimentConfig& config,
                 const Args& args) {
  using fabricsim::sim::FromSeconds;
  config.workload.duration =
      FromSeconds(args.smoke ? 12 : (args.quick ? 20 : 30));
  config.warmup = FromSeconds(5);
  config.drain = FromSeconds(args.smoke ? 10 : 12);
}

inline const char* kOrderings[] = {"Solo", "Kafka", "Raft"};

inline fabricsim::fabric::OrderingType OrderingAt(int i) {
  using fabricsim::fabric::OrderingType;
  switch (i) {
    case 0:
      return OrderingType::kSolo;
    case 1:
      return OrderingType::kKafka;
    default:
      return OrderingType::kRaft;
  }
}

}  // namespace benchutil
