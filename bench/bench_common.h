// Shared helpers for the paper-reproduction bench binaries.
//
// Each binary regenerates one table or figure of the paper. Binaries accept
// optional flags:
//   --quick        smaller sweeps / shorter windows (CI-friendly)
//   --csv          emit CSV instead of aligned tables
//   --attribution  trace every run and print the per-phase bottleneck
//                  attribution after each measurement point
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fabric/experiment.h"
#include "metrics/reporter.h"
#include "obs/attribution.h"
#include "obs/trace.h"

namespace benchutil {

struct Args {
  bool quick = false;
  bool csv = false;
  bool attribution = false;
};

inline Args ParseArgs(int argc, char** argv) {
  Args out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") out.quick = true;
    if (a == "--csv") out.csv = true;
    if (a == "--attribution") out.attribution = true;
  }
  return out;
}

/// Runs one measurement point. With --attribution, a fresh Tracer is
/// attached for just this run (bounding span memory across a sweep) and the
/// per-phase latency decomposition is printed under `label`.
inline fabricsim::fabric::ExperimentResult RunPoint(
    fabricsim::fabric::ExperimentConfig config, const Args& args,
    const std::string& label) {
  std::optional<fabricsim::obs::Tracer> tracer;
  if (args.attribution) {
    tracer.emplace();
    config.network.tracer = &*tracer;
  }
  auto result = fabricsim::fabric::RunExperiment(config);
  if (result.attribution) {
    std::cout << "attribution @ " << label << ":\n";
    fabricsim::obs::PrintAttribution(*result.attribution, std::cout, args.csv);
  }
  return result;
}

inline void PrintTable(const fabricsim::metrics::Table& table,
                       const Args& args) {
  if (args.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
}

/// The arrival-rate sweep used by Figs. 2-7 (the paper sweeps to ~450 tps).
inline std::vector<double> RateSweep(bool quick) {
  if (quick) return {50, 150, 250, 350};
  return {25, 50, 100, 150, 200, 250, 300, 350, 400, 450};
}

/// Applies the default measurement durations (shorter with --quick).
inline void Tune(fabricsim::fabric::ExperimentConfig& config, bool quick) {
  using fabricsim::sim::FromSeconds;
  config.workload.duration = FromSeconds(quick ? 20 : 30);
  config.warmup = FromSeconds(5);
  config.drain = FromSeconds(12);
}

inline const char* kOrderings[] = {"Solo", "Kafka", "Raft"};

inline fabricsim::fabric::OrderingType OrderingAt(int i) {
  using fabricsim::fabric::OrderingType;
  switch (i) {
    case 0:
      return OrderingType::kSolo;
    case 1:
      return OrderingType::kKafka;
    default:
      return OrderingType::kRaft;
  }
}

}  // namespace benchutil
