// Chaos benchmark: throughput dip and time-to-recover (TTR) when the
// ordering-service leader crashes mid-run, for each consenter type — plus
// the Byzantine drills: an equivocating OSN, a block tampered on the wire,
// a forging endorser, and a replay of committed transactions, each run
// against the armed defenses on Raft.
//
// The paper measures Fabric in steady state; this bench extends the same
// harness to the failure path: a `crash:leader@t,revive@t'` schedule runs
// against Raft (leader re-election), Kafka (controller re-election + ISR
// shrink), and Solo (single point of failure — a detected permanent stall).
// For each run it reports the pre-fault commit rate, the worst 1 s window
// after the fault, the recovered rate, the TTR (first window back at >= 90%
// of pre-fault), and whether the ledger-consistency invariants held. The
// Byzantine rows additionally gate on detection: the defense counter that
// attributes the attack (quarantines, rejected blocks, bad endorsements,
// duplicate-tx rejects) must be nonzero.
//
//   ./build/bench/fault_recovery [--quick] [--csv] [--attribution]
#include <cstdio>

#include "bench_common.h"

using namespace fabricsim;

namespace {

struct ByzDrill {
  const char* name;        // row label
  const char* spec_fmt;    // snprintf format, takes (start, end)
  bool point_event;        // spec_fmt takes only (start)
  // Which ExperimentResult counter must be nonzero for "detected".
  std::uint64_t fabric::ExperimentResult::* counter;
};

constexpr ByzDrill kByzDrills[] = {
    {"equivocate", "equivocate:osn0@%.0fs-%.0fs", false,
     &fabric::ExperimentResult::byz_quarantines},
    {"tamper-block", "tamper-block:osn0@%.0fs-%.0fs", false,
     &fabric::ExperimentResult::rejected_blocks},
    {"forge-endorse", "forge-endorsement:peer.endorse0@%.0fs-%.0fs", false,
     &fabric::ExperimentResult::bad_endorsements},
    {"replay-tx", "replay-tx:5@%.0fs", true,
     &fabric::ExperimentResult::duplicate_tx_rejects},
};

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args =
      benchutil::ParseArgs(argc, argv, "fault_recovery");

  const double rate = 150.0;
  const double crash_s = args.quick ? 15.0 : 20.0;
  const double revive_s = crash_s + 10.0;
  char spec[64];
  std::snprintf(spec, sizeof(spec), "crash:leader@%.0fs,revive@%.0fs",
                crash_s, revive_s);
  // Solo gets a bare crash (no revive): with a revive the deliver
  // watchdog's gap repair re-subscribes and the OSN backfills from its
  // history, so Solo recovers too. The permanent-outage row is the one the
  // paper's single-point-of-failure claim needs.
  char solo_spec[64];
  std::snprintf(solo_spec, sizeof(solo_spec), "crash:leader@%.0fs", crash_s);

  metrics::Table table({"ordering", "pre_tps", "dip_tps", "recovered_tps",
                        "ttr_s", "invariants", "stalled"});
  bool ok = true;

  benchutil::Sweep sweep(args);
  for (int i = 0; i < 3; ++i) {
    fabric::ExperimentConfig config =
        fabric::StandardConfig(benchutil::OrderingAt(i), 0, rate);
    benchutil::Tune(config, args);
    config.workload.duration = sim::FromSeconds(args.quick ? 30 : 40);
    config.faults =
        benchutil::OrderingAt(i) == fabric::OrderingType::kSolo ? solo_spec
                                                                : spec;
    sweep.Add(config, benchutil::kOrderings[i]);
  }
  // Byzantine drills ride the same sweep (results 3..6), all on Raft with
  // the defenses armed (RunExperiment arms them for Byzantine schedules).
  const double byz_start = crash_s;
  const double byz_end = crash_s + 5.0;
  std::vector<std::string> byz_specs;
  for (const ByzDrill& drill : kByzDrills) {
    char byz_spec[96];
    if (drill.point_event) {
      std::snprintf(byz_spec, sizeof(byz_spec), drill.spec_fmt, byz_start);
    } else {
      std::snprintf(byz_spec, sizeof(byz_spec), drill.spec_fmt, byz_start,
                    byz_end);
    }
    byz_specs.emplace_back(byz_spec);
    fabric::ExperimentConfig config =
        fabric::StandardConfig(fabric::OrderingType::kRaft, 0, rate);
    benchutil::Tune(config, args);
    config.workload.duration = sim::FromSeconds(args.quick ? 30 : 40);
    config.faults = byz_specs.back();
    sweep.Add(config, drill.name);
  }
  const auto results = sweep.Run();

  for (int i = 0; i < 3; ++i) {
    const auto& result = results[i];
    const auto& rec = *result.recovery;
    const bool inv_ok = result.invariants->Ok();

    table.AddRow({benchutil::kOrderings[i],
                  metrics::Fmt(rec.pre_fault_tps, 1),
                  metrics::Fmt(rec.dip_tps, 1),
                  metrics::Fmt(rec.recovered_tps, 1),
                  rec.stalled ? "never"
                              : (rec.time_to_recover_s < 0
                                     ? "n/a"
                                     : metrics::Fmt(rec.time_to_recover_s, 1)),
                  inv_ok ? "ok" : "VIOLATED",
                  rec.stalled ? "yes" : "no"});

    // Raft and Kafka must recover with a clean ledger; Solo (bare crash,
    // nowhere to fail over to) must stall and be detected as such — with
    // clean invariants: clients end their acked txs in explicit rejections
    // when the commit-timeout retries run out, so nothing vanishes.
    if (benchutil::OrderingAt(i) == fabric::OrderingType::kSolo) {
      ok = ok && rec.stalled && inv_ok;
    } else {
      ok = ok && inv_ok && !rec.stalled && rec.time_to_recover_s >= 0 &&
           rec.recovered_tps >= 0.9 * rec.pre_fault_tps;
    }
  }

  std::cout << "fault schedule: " << spec << " (solo: " << solo_spec
            << ") @ " << rate << " tps\n";
  benchutil::PrintTable(table, args);

  // Byzantine drills: each attack must be detected (its defense counter
  // fires), attributed (invariants stay clean — the defense kept the
  // forgery off the ledger), and recovered from (no stall, TTR bounded).
  metrics::Table byz_table({"attack", "detections", "pre_tps", "dip_tps",
                            "recovered_tps", "ttr_s", "invariants",
                            "stalled"});
  for (std::size_t d = 0; d < std::size(kByzDrills); ++d) {
    const auto& result = results[3 + d];
    const auto& rec = *result.recovery;
    const bool inv_ok = result.invariants->Ok();
    const std::uint64_t detections = result.*(kByzDrills[d].counter);

    byz_table.AddRow({kByzDrills[d].name, std::to_string(detections),
                      metrics::Fmt(rec.pre_fault_tps, 1),
                      metrics::Fmt(rec.dip_tps, 1),
                      metrics::Fmt(rec.recovered_tps, 1),
                      rec.stalled ? "never"
                                  : (rec.time_to_recover_s < 0
                                         ? "n/a"
                                         : metrics::Fmt(
                                               rec.time_to_recover_s, 1)),
                      inv_ok ? "ok" : "VIOLATED",
                      rec.stalled ? "yes" : "no"});
    ok = ok && detections > 0 && inv_ok && !rec.stalled &&
         rec.time_to_recover_s >= 0;
  }
  std::cout << "\nByzantine drills (raft, defenses armed):\n";
  for (std::size_t d = 0; d < std::size(kByzDrills); ++d) {
    std::cout << "  " << kByzDrills[d].name << ": " << byz_specs[d] << "\n";
  }
  benchutil::PrintTable(byz_table, args);

  std::cout << (ok ? "RECOVERY OK\n" : "RECOVERY FAILED\n");
  return benchutil::Finish(args, ok);
}
