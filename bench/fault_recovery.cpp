// Chaos benchmark: throughput dip and time-to-recover (TTR) when the
// ordering-service leader crashes mid-run, for each consenter type.
//
// The paper measures Fabric in steady state; this bench extends the same
// harness to the failure path: a `crash:leader@t,revive@t'` schedule runs
// against Raft (leader re-election), Kafka (controller re-election + ISR
// shrink), and Solo (single point of failure — a detected permanent stall).
// For each run it reports the pre-fault commit rate, the worst 1 s window
// after the fault, the recovered rate, the TTR (first window back at >= 90%
// of pre-fault), and whether the ledger-consistency invariants held.
//
//   ./build/bench/fault_recovery [--quick] [--csv] [--attribution]
#include <cstdio>

#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const benchutil::Args args =
      benchutil::ParseArgs(argc, argv, "fault_recovery");

  const double rate = 150.0;
  const double crash_s = args.quick ? 15.0 : 20.0;
  const double revive_s = crash_s + 10.0;
  char spec[64];
  std::snprintf(spec, sizeof(spec), "crash:leader@%.0fs,revive@%.0fs",
                crash_s, revive_s);

  metrics::Table table({"ordering", "pre_tps", "dip_tps", "recovered_tps",
                        "ttr_s", "invariants", "stalled"});
  bool ok = true;

  benchutil::Sweep sweep(args);
  for (int i = 0; i < 3; ++i) {
    fabric::ExperimentConfig config =
        fabric::StandardConfig(benchutil::OrderingAt(i), 0, rate);
    benchutil::Tune(config, args);
    config.workload.duration = sim::FromSeconds(args.quick ? 30 : 40);
    config.faults = spec;
    sweep.Add(config, benchutil::kOrderings[i]);
  }
  const auto results = sweep.Run();

  for (int i = 0; i < 3; ++i) {
    const auto& result = results[i];
    const auto& rec = *result.recovery;
    const bool inv_ok = result.invariants->Ok();

    table.AddRow({benchutil::kOrderings[i],
                  metrics::Fmt(rec.pre_fault_tps, 1),
                  metrics::Fmt(rec.dip_tps, 1),
                  metrics::Fmt(rec.recovered_tps, 1),
                  rec.stalled ? "never"
                              : (rec.time_to_recover_s < 0
                                     ? "n/a"
                                     : metrics::Fmt(rec.time_to_recover_s, 1)),
                  inv_ok ? "ok" : "VIOLATED",
                  rec.stalled ? "yes" : "no"});

    // Raft and Kafka must recover with a clean ledger; Solo must stall and
    // be detected as such (not report a bogus recovery). Solo's acked-lost
    // violations are the expected data-loss finding, not a harness bug.
    if (benchutil::OrderingAt(i) == fabric::OrderingType::kSolo) {
      ok = ok && rec.stalled;
    } else {
      ok = ok && inv_ok && !rec.stalled && rec.time_to_recover_s >= 0 &&
           rec.recovered_tps >= 0.9 * rec.pre_fault_tps;
    }
  }

  std::cout << "fault schedule: " << spec << " @ " << rate << " tps\n";
  benchutil::PrintTable(table, args);
  std::cout << (ok ? "RECOVERY OK\n" : "RECOVERY FAILED\n");
  return benchutil::Finish(args, ok);
}
