// Ablation: the two halves of the validate-phase bottleneck.
//
// (1) VSCC pool width (committing peer cores): the parallel signature-
//     verification stage scales with cores until the serial ledger-write
//     floor binds — Fabric 1.4's design (parallel VSCC, serial commit).
// (2) Per-endorsement signature-verification cost: the OR-vs-AND gap is
//     proportional to endorsements per transaction.
// (3) Serial ledger-write cost: the OR-policy ceiling.
#include "bench_common.h"
#include "fabric/topology.h"

using namespace fabricsim;

namespace {

fabric::ExperimentConfig Saturating(int and_x, const benchutil::Args& args) {
  fabric::ExperimentConfig config =
      fabric::StandardConfig(fabric::OrderingType::kSolo, and_x, 480);
  benchutil::Tune(config, args);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "ablation_validation");

  std::cout << "=== Ablation: validate-phase design choices ===\n";
  const std::vector<int> core_counts{1, 2, 4, 8};
  const std::vector<double> verify_ms{1.5, 3.0, 6.0};
  const std::vector<double> disk_ms{0.5, 1.0, 2.0, 4.0};

  benchutil::Sweep sweep(args);
  // (1) More cores widen the parallel VSCC stage; the serial ledger write
  // eventually caps. (Modeled by substituting the validator machine's core
  // count via the per-endorsement cost equivalence: cores c at cost k =
  // cores 4 at cost 4k/c, since capacity = c/k.)
  for (int cores : core_counts) {
    auto config = Saturating(5, args);
    const double scale = 4.0 / cores;
    config.network.calibration.vscc_base_cpu = static_cast<sim::SimDuration>(
        config.network.calibration.vscc_base_cpu * scale);
    config.network.calibration.vscc_per_endorsement_cpu =
        static_cast<sim::SimDuration>(
            config.network.calibration.vscc_per_endorsement_cpu * scale);
    sweep.Add(config, "vscc_cores" + std::to_string(cores));
  }
  for (double ms : verify_ms) {
    for (int and_x : {0, 5}) {
      auto config = Saturating(and_x, args);
      config.network.calibration.vscc_per_endorsement_cpu =
          sim::FromMillis(ms);
      sweep.Add(config, "verify" + metrics::Fmt(ms, 1) + "ms/" +
                            (and_x > 0 ? "AND5" : "OR"));
    }
  }
  for (double ms : disk_ms) {
    auto config = Saturating(0, args);
    config.network.calibration.block_write_per_tx_disk = sim::FromMillis(ms);
    sweep.Add(config, "disk" + metrics::Fmt(ms, 1) + "ms");
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  std::cout << "--- (1) VSCC worker-pool width: peak tps vs committing-peer "
               "cores (AND5) ---\n";
  metrics::Table pool_table({"vscc_cores", "peak_tps"});
  for (int cores : core_counts) {
    const auto& r = results[next++].report;
    pool_table.AddRow({std::to_string(cores),
                       metrics::Fmt(r.end_to_end.throughput_tps, 1)});
  }
  benchutil::PrintTable(pool_table, args);

  std::cout << "--- (2) Signature-verification cost: peak tps, OR vs AND5 "
               "---\n";
  metrics::Table sig_table({"verify_ms_per_endorsement", "OR_tps", "AND5_tps"});
  for (double ms : verify_ms) {
    std::vector<std::string> row{metrics::Fmt(ms, 1)};
    for (int and_x : {0, 5}) {
      (void)and_x;
      row.push_back(
          metrics::Fmt(results[next++].report.end_to_end.throughput_tps, 1));
    }
    sig_table.AddRow(std::move(row));
  }
  benchutil::PrintTable(sig_table, args);

  std::cout << "--- (3) Serial ledger-write cost: peak tps under OR ---\n";
  metrics::Table disk_table({"block_write_ms_per_tx", "OR_peak_tps"});
  for (double ms : disk_ms) {
    const auto& r = results[next++].report;
    disk_table.AddRow({metrics::Fmt(ms, 1),
                       metrics::Fmt(r.end_to_end.throughput_tps, 1)});
  }
  benchutil::PrintTable(disk_table, args);

  std::cout << "\nExpected shape: (1) AND5 peak scales with cores until the "
               "serial floor (~300 tps); (2) AND5 is ~x5 more sensitive to "
               "verification cost than OR; (3) the OR ceiling moves inversely "
               "with the serial write cost.\n";
  return benchutil::Finish(args);
}
