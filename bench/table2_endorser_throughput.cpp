// Reproduces Table II: peak throughput vs number of endorsing peers, for
// the OR10, OR3, AND5, and AND3 endorsement policies.
//
// Methodology mirrors the paper: one client machine per endorsing peer (its
// workload-generator design), arrival rate pushed past saturation, and the
// committed-transaction rate reported. Policies reference at most the
// available peers (ANDx with fewer than x peers endorses with all of them);
// cells the paper leaves blank are printed as "-".
//
// Paper's rows to confirm:
//   1 peer  -> ~50 tps everywhere (client-generator ceiling)
//   3 peers -> ~150 tps everywhere
//   OR10    -> ~246 @5, ~310 @7, ~300 @10 (validate-phase cap)
//   AND5    -> ~210 @5 (VSCC signature-verification cap)
#include "bench_common.h"

using namespace fabricsim;

namespace {

struct Cell {
  const char* label;
  int policy_or;   // >0: OR over min(n, peers)
  int policy_and;  // >0: AND over min(x, peers)
  std::vector<int> peer_counts;  // where the paper has values
};

const Cell kColumns[] = {
    {"OR10", 10, 0, {1, 3, 5, 7, 10}},
    {"OR3", 3, 0, {1, 3}},
    {"AND5", 0, 5, {1, 3, 5}},
    {"AND3", 0, 3, {1, 3}},
};

}  // namespace

fabric::ExperimentConfig PeakConfig(const Cell& cell, int peers,
                                    const benchutil::Args& args) {
  fabric::ExperimentConfig config;
  config.network.topology.ordering = fabric::OrderingType::kSolo;
  config.network.topology.endorsing_peers = peers;
  config.network.topology.committing_peers = 1;
  // One client per endorsing peer (paper design); push past saturation.
  config.network.topology.clients = peers;
  config.workload.kind = client::WorkloadKind::kKvWrite;
  config.workload.rate_tps = 60.0 * peers + 60.0;
  benchutil::Tune(config, args);

  if (cell.policy_or > 0) {
    config.network.channel.policy_expr =
        fabric::MakeOrPolicy(std::min(cell.policy_or, peers)).ToString();
  } else {
    config.network.channel.policy_expr =
        fabric::MakeAndPolicy(std::min(cell.policy_and, peers)).ToString();
  }
  return config;
}

bool CellPresent(const Cell& cell, int peers) {
  return std::find(cell.peer_counts.begin(), cell.peer_counts.end(), peers) !=
         cell.peer_counts.end();
}

int main(int argc, char** argv) {
  const auto args =
      benchutil::ParseArgs(argc, argv, "table2_endorser_throughput");

  std::cout << "=== Table II: Throughput vs. number of endorsing peers "
               "(tps) ===\n";
  benchutil::Sweep sweep(args);
  for (int peers : {1, 3, 5, 7, 10}) {
    for (const Cell& cell : kColumns) {
      if (!CellPresent(cell, peers)) continue;
      sweep.Add(PeakConfig(cell, peers, args),
                std::string(cell.label) + "/peers" + std::to_string(peers));
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  metrics::Table table({"#endorsing_peers", "OR10", "OR3", "AND5", "AND3"});
  for (int peers : {1, 3, 5, 7, 10}) {
    std::vector<std::string> row{std::to_string(peers)};
    for (const Cell& cell : kColumns) {
      if (!CellPresent(cell, peers)) {
        row.push_back("-");
        continue;
      }
      row.push_back(metrics::Fmt(
          results[next++].report.end_to_end.throughput_tps, 0));
    }
    table.AddRow(std::move(row));
  }
  benchutil::PrintTable(table, args);
  std::cout << "\nExpected shape: ~50 tps per client machine up to 3 peers; "
               "OR10 saturates around 300-310 tps at 7-10 peers (validate "
               "cap); AND5 caps around 200-215 tps at 5 peers.\n";
  return benchutil::Finish(args);
}
