// Reproduces Fig. 4: per-phase throughput (execute / order / validate) vs
// arrival rate, under the OR endorsement policy, for each ordering service.
//
// Paper's findings to confirm: each phase grows linearly with the arrival
// rate until its own peak; the validate phase peaks first (the bottleneck),
// while execute and order keep tracking the arrival rate beyond it.
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args =
      benchutil::ParseArgs(argc, argv, "fig4_phase_throughput_or");

  std::cout << "=== Fig. 4: Per-phase throughput under OR (tps) ===\n";
  const std::vector<double> rates = benchutil::RateSweep(args);
  benchutil::Sweep sweep(args);
  for (int o = 0; o < 3; ++o) {
    for (double rate : rates) {
      fabric::ExperimentConfig config =
          fabric::StandardConfig(benchutil::OrderingAt(o), 0, rate);
      benchutil::Tune(config, args);
      sweep.Add(config, std::string(benchutil::kOrderings[o]) + "@" +
                            metrics::Fmt(rate, 0));
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (int o = 0; o < 3; ++o) {
    std::cout << "--- Ordering service: " << benchutil::kOrderings[o]
              << " ---\n";
    metrics::Table table({"arrival_tps", "execute", "order", "validate"});
    for (double rate : rates) {
      const auto& r = results[next++].report;
      table.AddRow({metrics::Fmt(rate, 0),
                    metrics::Fmt(r.execute.throughput_tps, 1),
                    metrics::Fmt(r.order.throughput_tps, 1),
                    metrics::Fmt(r.validate.throughput_tps, 1)});
    }
    benchutil::PrintTable(table, args);
  }
  std::cout << "\nExpected shape: execute and order track the arrival rate "
               "across the sweep; validate plateaus around 300 tps — the "
               "system bottleneck is the validate phase.\n";
  return benchutil::Finish(args);
}
