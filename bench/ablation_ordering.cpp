// Ablation: ordering-service sensitivity — the paper's finding that the
// consenter choice does not matter at Fabric's throughput.
//
// (1) Kafka replication factor: the in-sync-replica commit round is
//     invisible at ~250 tps on a 1 Gbps LAN.
// (2) Network latency: ordering latency only matters once the wire does —
//     inflating the base latency shows where consensus rounds would start
//     to bite (Raft pays ~1 RTT to majority, Kafka ~2 RTTs produce+ISR).
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "ablation_ordering");

  std::cout << "=== Ablation: ordering service ===\n";
  const std::vector<int> factors{1, 3, 5};
  const std::vector<double> base_ms{0.18, 2.0, 10.0, 40.0};

  benchutil::Sweep sweep(args);
  for (int rf : factors) {
    fabric::ExperimentConfig config =
        fabric::StandardConfig(fabric::OrderingType::kKafka, 0, 250);
    config.network.topology.kafka_brokers = 5;
    config.network.topology.kafka_replication_factor = rf;
    benchutil::Tune(config, args);
    sweep.Add(config, "rf" + std::to_string(rf));
  }
  for (double ms : base_ms) {
    for (auto type :
         {fabric::OrderingType::kKafka, fabric::OrderingType::kRaft}) {
      fabric::ExperimentConfig config = fabric::StandardConfig(type, 0, 150);
      config.network.net.base_latency = sim::FromMillis(ms);
      benchutil::Tune(config, args);
      sweep.Add(config, std::string(type == fabric::OrderingType::kKafka
                                        ? "Kafka"
                                        : "Raft") +
                            "/lat" + metrics::Fmt(ms, 2) + "ms");
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  std::cout << "--- (1) Kafka replication factor (5 brokers, 250 tps) ---\n";
  metrics::Table rf_table({"replication_factor", "tps", "e2e_latency_s",
                           "order_latency_s"});
  for (int rf : factors) {
    const auto& r = results[next++].report;
    rf_table.AddRow({std::to_string(rf),
                     metrics::Fmt(r.end_to_end.throughput_tps, 1),
                     metrics::Fmt(r.end_to_end.mean_latency_s, 2),
                     metrics::Fmt(r.order.mean_latency_s, 3)});
  }
  benchutil::PrintTable(rf_table, args);

  std::cout << "--- (2) Network base latency (Kafka vs Raft, 150 tps) ---\n";
  metrics::Table lat_table({"base_latency_ms", "Kafka_order_s", "Raft_order_s",
                            "Kafka_e2e_s", "Raft_e2e_s"});
  for (double ms : base_ms) {
    const auto& kafka = results[next++].report;
    const auto& raft = results[next++].report;
    lat_table.AddRow({metrics::Fmt(ms, 2),
                      metrics::Fmt(kafka.order.mean_latency_s, 3),
                      metrics::Fmt(raft.order.mean_latency_s, 3),
                      metrics::Fmt(kafka.end_to_end.mean_latency_s, 2),
                      metrics::Fmt(raft.end_to_end.mean_latency_s, 2)});
  }
  benchutil::PrintTable(lat_table, args);

  std::cout << "\nExpected shape: (1) replication factor changes nothing "
               "measurable at LAN latencies (the paper's Kafka finding); "
               "(2) only at tens of milliseconds of base latency do the "
               "consensus rounds become visible in the order phase.\n";
  return benchutil::Finish(args);
}
