// Optimization-testbed ablation: the Thakkar et al. (arXiv:1805.11390)
// validate-phase fixes as toggleable knobs, measured by where they move the
// saturation knee and where the bottleneck goes afterwards.
//
// The paper's §V diagnosis is that Fabric saturates in the validation
// phase: serial VSCC re-verifies every certificate from scratch and the
// ledger writes every transaction's state individually. This bench arms
// each published fix in isolation and together, on the overload grid of
// bench/overload_knee, and reports the knee shift plus the protected-2x
// p99 per configuration:
//   baseline       all knobs off (must stay byte-identical to the
//                  pre-optimization simulated results)
//   msp-cache      MSP identity-verification cache (repeat cert chains
//                  skip full validation)
//   vscc-workers   dedicated VSCC validation workers (validation stops
//                  competing with the rest of the peer for cores)
//   bulk-commit    one batched state-db write per block
//   shortcircuit   endorsement verification stops at policy satisfaction
//   all-on         every knob together
//
// For each configuration it
//   1. probes the saturation knee (protection on, offered >> capacity);
//   2. re-runs at 2x the probed knee with attribution tracing and reports
//      p99 plus the per-phase queue decomposition — the bottleneck
//      migration (validate -> order on the smoke tier, a >=2x validate
//      queue drain everywhere) is an acceptance criterion, not just
//      exposition;
//   3. checks the ablation contract: bulk-commit and all-on move the knee
//      measurably past baseline; shortcircuit alone does NOT move it on
//      honest runs (clients already send minimal endorsement sets — the
//      knob only pays off against over-endorsed or adversarial traffic,
//      a finding EXPERIMENTS.md documents).
//
//   ./build/bench/optimizations [--quick] [--smoke] [--csv]
//
// --smoke is the CI tier: Solo + OR policy, short windows. The full sweep
// adds the AND5 policy, where the msp-cache knob (5 certificates per tx
// instead of 1) carries the shift.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace fabricsim;

namespace {

struct Knob {
  const char* name;
  fabric::OptimizationOptions opt;
};

std::vector<Knob> Knobs() {
  fabric::OptimizationOptions msp;
  msp.msp_cache = true;
  fabric::OptimizationOptions workers;
  workers.vscc_workers = 4;
  fabric::OptimizationOptions bulk;
  bulk.bulk_commit = true;
  fabric::OptimizationOptions sc;
  sc.policy_shortcircuit = true;
  fabric::OptimizationOptions all;
  all.msp_cache = true;
  all.vscc_workers = 4;
  all.bulk_commit = true;
  all.policy_shortcircuit = true;
  return {{"baseline", {}},  {"msp-cache", msp}, {"vscc-workers", workers},
          {"bulk-commit", bulk}, {"shortcircuit", sc}, {"all-on", all}};
}

// Knee-shift floors (measured: all-on 2.1x smoke / 4.0x full on OR, 2.4x
// on AND5; bulk-commit ~1.9x on OR; AND5 msp-cache 1.5x. Floors leave
// calibration headroom). bulk-commit's floor applies under OR only: it
// fixes the serial-disk bottleneck, which is what binds under OR — under
// AND5 the 5-signature VSCC CPU dominates and bulk is expected to be a
// near-no-op (measured 1.02x), so there it is only held to "no harm".
constexpr double kAllOnShiftFloor = 1.25;
constexpr double kBulkShiftFloor = 1.15;
constexpr double kAndMspShiftFloor = 1.2;
constexpr double kNoHarmFloor = 0.95;
// Shortcircuit on honest traffic verifies the same minimal endorsement set
// the baseline does, so its simulated knee must not move (deterministic
// simulation: the band only absorbs float noise).
constexpr double kNoShiftBand = 0.01;
// Protection-on p99 ceiling at 2x offered load (same contract as
// bench/overload_knee: bounded queues cap the tail). AND5's per-tx service
// time is ~3x OR's, so the same bounded backlog drains proportionally
// slower — its ceiling scales accordingly.
constexpr double kBoundedP99sOr = 6.0;
constexpr double kBoundedP99sAnd = 10.0;
// all-on must drain the validate queue by at least this factor at 2x; the
// measured reductions are 10-18x.
constexpr double kValidateDrainFactor = 2.0;

fabric::ExperimentConfig BaseConfig(int and_x, double rate,
                                    const fabric::OptimizationOptions& opt,
                                    bool quick, bool smoke) {
  fabric::ExperimentConfig config =
      fabric::StandardConfig(fabric::OrderingType::kSolo, and_x, rate);
  // Enough client machines that the offered rate, not the per-client event
  // loop (~50 tps each), sets the load.
  config.network.topology.clients = smoke ? 12 : 24;
  config.network.optimizations = opt;
  config.warmup = sim::FromSeconds(5);
  config.workload.duration = sim::FromSeconds(smoke ? 12 : (quick ? 20 : 30));
  config.drain = sim::FromSeconds(smoke ? 10 : (quick ? 12 : 15));
  // Overload protection pins the run at its service rate, so the probe's
  // goodput plateau reads the knee without unbounded queue growth.
  fabric::OverloadOptions& ov = config.network.overload;
  ov.enabled = true;
  ov.policy = sim::OverloadPolicy::kReject;
  ov.flow.enabled = true;
  ov.flow.max_queue = 32;
  return config;
}

const char* DominantQueuePhase(const obs::AttributionReport& a) {
  const double e = a.execute.queue_ms;
  const double o = a.order.queue_ms;
  const double v = a.validate.queue_ms;
  if (v >= e && v >= o) return "validate";
  if (o >= e) return "order";
  return "execute";
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args =
      benchutil::ParseArgs(argc, argv, "optimizations");
  const bool smoke = args.smoke;

  // The 2x re-runs carry attribution tracing unconditionally: the
  // bottleneck-migration check below needs the queue decomposition.
  benchutil::Args attr_args = args;
  attr_args.attribution = true;

  const std::vector<int> policies =
      (smoke || args.quick) ? std::vector<int>{0} : std::vector<int>{0, 5};
  const double probe_rate = smoke ? 900.0 : 1500.0;
  const std::vector<Knob> knobs = Knobs();

  metrics::Table table({"policy", "config", "knee_tps", "shift", "p99_2x_s",
                        "queue_bound", "validate_q_ms"});
  bool ok = true;

  for (const int and_x : policies) {
    const std::string policy = and_x == 0 ? "OR" : "AND5";

    // 1. Saturation probes: one per knob configuration, all independent,
    // so they run as one parallel batch.
    benchutil::Sweep sweep(args);
    for (const Knob& k : knobs) {
      sweep.Add(BaseConfig(and_x, probe_rate, k.opt, args.quick, smoke),
                policy + " " + k.name + " probe");
    }
    const auto probes = sweep.Run();

    std::vector<double> knees(knobs.size(), 0.0);
    for (std::size_t i = 0; i < knobs.size(); ++i) {
      knees[i] = probes[i].report.goodput_tps;
      std::printf("%s %s knee: %.1f tps\n", policy.c_str(), knobs[i].name,
                  knees[i]);
      if (knees[i] <= 0.0) {
        std::printf("%s %s: saturation probe produced no goodput\n",
                    policy.c_str(), knobs[i].name);
        ok = false;
      }
    }

    // 2. 2x-knee re-runs with attribution: p99 under protection plus the
    // per-phase queue decomposition.
    benchutil::Sweep attr_sweep(attr_args);
    for (std::size_t i = 0; i < knobs.size(); ++i) {
      attr_sweep.Add(
          BaseConfig(and_x, 2.0 * knees[i], knobs[i].opt, args.quick, smoke),
          policy + " " + knobs[i].name + " 2x");
    }
    const auto at2x = attr_sweep.Run();

    const double base_knee = knees[0];
    double base_validate_q = 0.0;
    for (std::size_t i = 0; i < knobs.size(); ++i) {
      const auto& r = at2x[i];
      const double shift = base_knee > 0.0 ? knees[i] / base_knee : 0.0;
      const char* bound =
          r.attribution ? DominantQueuePhase(*r.attribution) : "?";
      const double vq = r.attribution ? r.attribution->validate.queue_ms : 0.0;
      const double p99 = r.report.end_to_end.p99_latency_s;
      if (i == 0) base_validate_q = vq;
      table.AddRow({policy, knobs[i].name, metrics::Fmt(knees[i], 1),
                    metrics::Fmt(shift, 2), metrics::Fmt(p99, 3), bound,
                    metrics::Fmt(vq, 1)});
      const double p99_cap = and_x == 0 ? kBoundedP99sOr : kBoundedP99sAnd;
      if (p99 > p99_cap) {
        std::printf("%s %s: protected p99 unbounded at 2x: %.3fs\n",
                    policy.c_str(), knobs[i].name, p99);
        ok = false;
      }
    }

    // 3. The ablation contract.
    auto knee_of = [&](const char* name) -> double {
      for (std::size_t i = 0; i < knobs.size(); ++i) {
        if (std::string(knobs[i].name) == name) return knees[i];
      }
      return 0.0;
    };
    if (knee_of("all-on") < kAllOnShiftFloor * base_knee) {
      std::printf("%s: all-on knee did not shift: %.1f < %.2f x %.1f tps\n",
                  policy.c_str(), knee_of("all-on"), kAllOnShiftFloor,
                  base_knee);
      ok = false;
    }
    const double bulk_floor = and_x == 0 ? kBulkShiftFloor : kNoHarmFloor;
    if (knee_of("bulk-commit") < bulk_floor * base_knee) {
      std::printf("%s: bulk-commit knee did not shift: %.1f < %.2f x "
                  "%.1f tps\n",
                  policy.c_str(), knee_of("bulk-commit"), bulk_floor,
                  base_knee);
      ok = false;
    }
    if (and_x > 0 &&
        knee_of("msp-cache") < kAndMspShiftFloor * base_knee) {
      // Under AND5 each tx carries 5 endorsement certificates, so the MSP
      // cache is the knob that carries the shift (measured 1.46x).
      std::printf("%s: msp-cache knee did not shift: %.1f < %.2f x "
                  "%.1f tps\n",
                  policy.c_str(), knee_of("msp-cache"), kAndMspShiftFloor,
                  base_knee);
      ok = false;
    }
    const double sc_dev = base_knee > 0.0
                              ? std::abs(knee_of("shortcircuit") - base_knee) /
                                    base_knee
                              : 1.0;
    if (sc_dev > kNoShiftBand) {
      std::printf("%s: shortcircuit moved the knee on honest traffic "
                  "(%.1f vs %.1f tps) — it should be a no-op when clients "
                  "send minimal endorsement sets\n",
                  policy.c_str(), knee_of("shortcircuit"), base_knee);
      ok = false;
    }
    // Bottleneck migration: at 2x the baseline queues in validate; all-on
    // must drain that queue. The strict phase handoff (dominant queue
    // becomes "order") is asserted on the smoke tier, where calibration
    // pins it; at the full tier's higher knees the 2x rejection shedding
    // leaves every phase queue small, and which tiny residual "dominates"
    // is not a stable signal — there the contract is the drain factor
    // (measured reductions are 10-18x against a 2x floor).
    const auto& base2x = at2x[0];
    const auto& all2x = at2x.back();
    if (base2x.attribution && all2x.attribution) {
      if (std::string(DominantQueuePhase(*base2x.attribution)) !=
          "validate") {
        std::printf("%s: baseline 2x is not validate-queue-bound "
                    "(calibration drift?)\n",
                    policy.c_str());
        ok = false;
      }
      const double all_vq = all2x.attribution->validate.queue_ms;
      if (all_vq * kValidateDrainFactor >= base_validate_q) {
        std::printf("%s: all-on did not drain the validate queue "
                    "(%.1f ms vs baseline %.1f ms)\n",
                    policy.c_str(), all_vq, base_validate_q);
        ok = false;
      }
      if (smoke && std::string(DominantQueuePhase(*all2x.attribution)) ==
                       "validate") {
        std::printf("%s: all-on did not migrate the bottleneck off "
                    "validate (queue %.1f ms vs baseline %.1f ms)\n",
                    policy.c_str(), all_vq, base_validate_q);
        ok = false;
      }
    } else {
      std::printf("%s: missing attribution on the 2x points\n",
                  policy.c_str());
      ok = false;
    }
  }

  benchutil::PrintTable(table, args);
  std::cout << (ok ? "OPTIMIZATIONS OK\n" : "OPTIMIZATIONS FAILED\n");
  return benchutil::Finish(args, ok);
}
