// Conservative-PDES speedup bench: host events/s and speedup at 1/2/4
// DES threads on two topologies — the paper's fig2 full-size network
// (10 endorsing peers + validator + 3 OSNs + 10 clients, Solo at the
// ~250 tps knee) and a 32-peer network (more lanes, finer-grained work per
// lane).
//
// Three contracts, in decreasing strictness:
//   1. Identity (always enforced): the chain head and executed-event count
//      must be byte-identical across every thread count, or the bench exits
//      nonzero. This is the tentpole determinism proof at bench scale.
//   2. Determinism across reps (always enforced, via the recorder).
//   3. Speedup (enforced only in --full mode on hosts with >= 4 cores):
//      events/s at 4 threads must be >= 2x the serial rate on the fig2
//      point. CI smoke containers often have 1-2 cores, where conservative
//      PDES can only add barrier overhead — the JSON records nproc so the
//      trajectory stays interpretable.
//
// Points are always timed one at a time (--jobs is recorded but not used to
// overlap points): overlapping full experiments would pollute every wall
// clock this bench exists to measure.
#include <chrono>
#include <thread>

#include "bench_common.h"

using namespace fabricsim;

namespace {

struct Timing {
  fabric::ExperimentResult result;
  std::vector<double> wall_s;  // per kept rep
  double EventsPerSec() const {
    const bench::MeanStddev m = bench::Summarize(wall_s);
    return m.mean > 0.0
               ? static_cast<double>(result.sched_events) / m.mean
               : 0.0;
  }
};

Timing TimePoint(fabric::ExperimentConfig config, int threads, int reps,
                 const std::string& label) {
  config.des_threads = threads;
  Timing out;
  // One discarded warm-up rep (page-cache, allocator, signature caches),
  // then `reps` kept ones — same protocol as the sweep harness.
  const int total = reps + (reps > 1 ? 1 : 0);
  for (int r = 0; r < total; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fabric::ExperimentResult res = fabric::RunExperiment(config);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    const bool keep = (total == reps) || r > 0;
    if (keep) {
      if (!out.wall_s.empty() &&
          res.chain_head_hex != out.result.chain_head_hex) {
        std::fprintf(stderr, "pdes_speedup: NONDETERMINISM at %s rep %d\n",
                     label.c_str(), r);
        benchutil::RecorderSlot()->MarkNondeterministic();
      }
      out.wall_s.push_back(dt.count());
      out.result = std::move(res);
    }
  }
  bench::HostSample host;
  host.wall_s = out.wall_s;
  host.sched_events = out.result.sched_events;
  benchutil::RecorderSlot()->AddPoint(label, out.result, host);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "pdes_speedup");
  const int nproc = static_cast<int>(std::thread::hardware_concurrency());
  benchutil::RecorderSlot()->SetNproc(nproc);

  std::cout << "=== Conservative-PDES speedup (nproc=" << nproc << ") ===\n";

  // fig2 full-size: the paper's standard 10-peer network at the OR knee.
  fabric::ExperimentConfig fig2 =
      fabric::StandardConfig(fabric::OrderingType::kSolo, 0, 250);
  benchutil::Tune(fig2, args);

  // 32 endorsing peers: twice the lanes, the same aggregate arrival rate —
  // the scaling direction conservative PDES exists for.
  fabric::ExperimentConfig wide =
      fabric::StandardConfig(fabric::OrderingType::kSolo, 0, 250);
  wide.network.topology.endorsing_peers = 32;
  benchutil::Tune(wide, args);
  if (args.smoke) {
    // Keep the smoke tier fast: the wide topology at a shorter window.
    wide.workload.duration = sim::FromSeconds(8);
  }

  const std::vector<std::pair<const char*, fabric::ExperimentConfig>> topos =
      {{"fig2", fig2}, {"32peer", wide}};
  const std::vector<int> thread_counts = {1, 2, 4};

  metrics::Table table({"topology", "des_threads", "events", "wall_s",
                        "events_per_sec", "speedup", "windows",
                        "serial_instants"});
  bool ok = true;
  double fig2_speedup_at4 = 0.0;

  for (const auto& [name, config] : topos) {
    double serial_eps = 0.0;
    std::string serial_head;
    std::uint64_t serial_events = 0;
    for (int threads : thread_counts) {
      const std::string label =
          std::string(name) + "/t" + std::to_string(threads);
      const Timing t = TimePoint(config, threads, args.reps, label);
      const double eps = t.EventsPerSec();
      if (threads == 1) {
        serial_eps = eps;
        serial_head = t.result.chain_head_hex;
        serial_events = t.result.sched_events;
      } else {
        // Contract 1: byte-identical simulated output at every thread count.
        if (t.result.chain_head_hex != serial_head ||
            t.result.sched_events != serial_events) {
          std::fprintf(stderr,
                       "pdes_speedup: IDENTITY VIOLATION at %s "
                       "(chain %s vs %s, events %llu vs %llu)\n",
                       label.c_str(), t.result.chain_head_hex.c_str(),
                       serial_head.c_str(),
                       static_cast<unsigned long long>(t.result.sched_events),
                       static_cast<unsigned long long>(serial_events));
          ok = false;
        }
      }
      const double speedup = serial_eps > 0.0 ? eps / serial_eps : 0.0;
      if (std::string(name) == "fig2" && threads == 4) {
        fig2_speedup_at4 = speedup;
      }
      table.AddRow({name, std::to_string(threads),
                    std::to_string(t.result.sched_events),
                    metrics::Fmt(bench::Summarize(t.wall_s).mean, 3),
                    metrics::Fmt(eps, 0), metrics::Fmt(speedup, 2),
                    std::to_string(t.result.pdes_windows),
                    std::to_string(t.result.pdes_serial_instants)});
    }
  }
  benchutil::PrintTable(table, args);

  // One-line summary for the nightly job summary.
  std::cout << "\npdes_speedup: fig2 4-thread speedup "
            << metrics::Fmt(fig2_speedup_at4, 2) << "x on " << nproc
            << " core(s), mode=" << args.Mode() << "\n";

  // Contract 3: the >= 2x target, only where it is physically meaningful.
  if (!args.quick && nproc >= 4 && fig2_speedup_at4 < 2.0) {
    std::fprintf(stderr,
                 "pdes_speedup: fig2 speedup %.2fx at 4 threads is below "
                 "the 2x target on a %d-core host\n",
                 fig2_speedup_at4, nproc);
    ok = false;
  }
  return benchutil::Finish(args, ok);
}
