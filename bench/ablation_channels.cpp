// Ablation: channel scaling (§II / related-work [11] — channels as
// Fabric's horizontal-scaling mechanism).
//
// Sweeps the number of channels with the peer set held fixed. The point the
// bottleneck analysis predicts: channels parallelize *ordering* (one
// consenter instance per channel) but NOT a peer-local bottleneck — every
// peer still validates every channel's blocks through one CPU and one
// serial ledger-write path, so peak committed throughput stays pinned at
// the validate-phase ceiling (~300 tps OR) no matter how many channels the
// load is spread over. Channel scaling in practice requires disjoint peer
// sets per channel, which the paper's fixed 20-machine testbed could not
// provide either.
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "ablation_channels");

  std::cout << "=== Ablation: channels vs throughput (Solo, OR, saturating "
               "load, shared peers) ===\n";
  const std::vector<int> channel_counts{1, 2, 4};

  benchutil::Sweep sweep(args);
  for (int channels : channel_counts) {
    fabric::ExperimentConfig config =
        fabric::StandardConfig(fabric::OrderingType::kSolo, 0, 480);
    config.network.channels = channels;
    benchutil::Tune(config, args);
    sweep.Add(config, "saturating/ch" + std::to_string(channels));
  }
  for (int channels : channel_counts) {
    fabric::ExperimentConfig config =
        fabric::StandardConfig(fabric::OrderingType::kSolo, 0, 240);
    config.network.channels = channels;
    benchutil::Tune(config, args);
    sweep.Add(config, "below-knee/ch" + std::to_string(channels));
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  metrics::Table table({"channels", "offered_tps", "committed_tps",
                        "e2e_latency_s"});
  for (int channels : channel_counts) {
    const auto& result = results[next++];
    table.AddRow({std::to_string(channels), metrics::Fmt(480, 0),
                  metrics::Fmt(result.report.end_to_end.throughput_tps, 1),
                  metrics::Fmt(result.report.end_to_end.mean_latency_s, 2)});
  }
  benchutil::PrintTable(table, args);

  std::cout << "--- Below the validate ceiling: channels split load "
               "cleanly (240 tps total) ---\n";
  metrics::Table low({"channels", "committed_tps", "e2e_latency_s"});
  for (int channels : channel_counts) {
    const auto& result = results[next++];
    low.AddRow({std::to_string(channels),
                metrics::Fmt(result.report.end_to_end.throughput_tps, 1),
                metrics::Fmt(result.report.end_to_end.mean_latency_s, 2)});
  }
  benchutil::PrintTable(low, args);

  std::cout << "\nExpected shape: committed throughput stays ~300 tps at "
               "saturation regardless of channel count — the validate phase "
               "is a per-peer bottleneck, not a per-channel one.\n";
  return benchutil::Finish(args);
}
