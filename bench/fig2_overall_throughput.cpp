// Reproduces Fig. 2: overall transaction throughput vs arrival rate, for
// each ordering service (Solo, Kafka, Raft) under the OR and AND(5)
// endorsement policies.
//
// Paper's findings to confirm:
//   - all three ordering services peak around 300 tps under OR;
//   - AND peaks significantly lower, around 200 tps.
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "fig2_overall_throughput");

  std::cout << "=== Fig. 2: Overall transaction throughput (tps) ===\n";
  metrics::Table table({"arrival_tps", "Solo/OR", "Solo/AND5", "Kafka/OR",
                        "Kafka/AND5", "Raft/OR", "Raft/AND5"});

  const std::vector<double> rates = benchutil::RateSweep(args);
  benchutil::Sweep sweep(args);
  for (double rate : rates) {
    for (int o = 0; o < 3; ++o) {
      for (int and_x : {0, 5}) {
        fabric::ExperimentConfig config =
            fabric::StandardConfig(benchutil::OrderingAt(o), and_x, rate);
        benchutil::Tune(config, args);
        sweep.Add(config, std::string(benchutil::kOrderings[o]) +
                              (and_x > 0 ? "/AND5@" : "/OR@") +
                              metrics::Fmt(rate, 0));
      }
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (double rate : rates) {
    std::vector<std::string> row{metrics::Fmt(rate, 0)};
    // Consumes in submission order: Solo/OR, Solo/AND, Kafka/OR, ...
    for (int cell = 0; cell < 6; ++cell) {
      row.push_back(
          metrics::Fmt(results[next++].report.end_to_end.throughput_tps, 1));
    }
    table.AddRow(std::move(row));
  }
  benchutil::PrintTable(table, args);
  std::cout << "\nExpected shape: OR saturates ~300 tps for all three "
               "orderings; AND5 ~200 tps; no significant difference between "
               "Solo, Kafka, Raft.\n";
  return benchutil::Finish(args);
}
