// Reproduces Fig. 3: overall (end-to-end) transaction latency vs arrival
// rate, per ordering service, under OR and AND(5).
//
// Paper's findings to confirm: latency is flat before the saturation knee
// and grows sharply past it; the AND policy's knee comes earlier because
// its peak throughput is lower.
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "fig3_overall_latency");

  std::cout << "=== Fig. 3: Overall transaction latency (s) ===\n";
  metrics::Table table({"arrival_tps", "Solo/OR", "Solo/AND5", "Kafka/OR",
                        "Kafka/AND5", "Raft/OR", "Raft/AND5"});

  const std::vector<double> rates = benchutil::RateSweep(args);
  benchutil::Sweep sweep(args);
  for (double rate : rates) {
    for (int o = 0; o < 3; ++o) {
      for (int and_x : {0, 5}) {
        fabric::ExperimentConfig config =
            fabric::StandardConfig(benchutil::OrderingAt(o), and_x, rate);
        benchutil::Tune(config, args);
        sweep.Add(config, std::string(benchutil::kOrderings[o]) +
                              (and_x > 0 ? "/AND5@" : "/OR@") +
                              metrics::Fmt(rate, 0));
      }
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (double rate : rates) {
    std::vector<std::string> row{metrics::Fmt(rate, 0)};
    for (int cell = 0; cell < 6; ++cell) {
      row.push_back(
          metrics::Fmt(results[next++].report.end_to_end.mean_latency_s, 2));
    }
    table.AddRow(std::move(row));
  }
  benchutil::PrintTable(table, args);
  std::cout << "\nExpected shape: sub-second latency below the knee "
               "(~300 tps OR / ~200 tps AND5), rising sharply past it; the "
               "AND5 columns blow up at lower arrival rates than OR.\n";
  return benchutil::Finish(args);
}
