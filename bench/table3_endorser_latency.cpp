// Reproduces Table III: execute latency and order & validate latency vs
// number of endorsing peers, for OR10, OR3, AND5, AND3.
//
// The paper reports latencies at each configuration's peak operating point;
// this harness self-calibrates: a first pass measures the configuration's
// peak throughput (as in Table II), a second pass re-runs at ~85% of that
// peak and reports the mean per-phase latencies there.
//
// Paper's shape to confirm: execute latency ~0.25-0.32 s under OR (growing
// slightly with scale) and up to ~0.57 s under AND5 (fan-out stragglers +
// client queueing); order & validate ~0.4-0.8 s, highest where the validate
// phase runs close to its capacity.
#include "bench_common.h"

using namespace fabricsim;

namespace {

struct Column {
  const char* label;
  int policy_or;
  int policy_and;
  std::vector<int> peer_counts;
};

const Column kColumns[] = {
    {"OR10", 10, 0, {1, 3, 5, 7, 10}},
    {"OR3", 3, 0, {1, 3}},
    {"AND5", 0, 5, {1, 3, 5}},
    {"AND3", 0, 3, {1, 3}},
};

fabric::ExperimentConfig MakeConfig(const Column& col, int peers, double rate,
                                    const benchutil::Args& args) {
  fabric::ExperimentConfig config;
  config.network.topology.ordering = fabric::OrderingType::kSolo;
  config.network.topology.endorsing_peers = peers;
  config.network.topology.clients = peers;
  config.workload.kind = client::WorkloadKind::kKvWrite;
  config.workload.rate_tps = rate;
  benchutil::Tune(config, args);
  if (col.policy_or > 0) {
    config.network.channel.policy_expr =
        fabric::MakeOrPolicy(std::min(col.policy_or, peers)).ToString();
  } else {
    config.network.channel.policy_expr =
        fabric::MakeAndPolicy(std::min(col.policy_and, peers)).ToString();
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args =
      benchutil::ParseArgs(argc, argv, "table3_endorser_latency");

  std::cout << "=== Table III: Latency vs. number of endorsing peers (s) "
               "===\n";
  metrics::Table exec_table(
      {"#endorsing_peers", "OR10", "OR3", "AND5", "AND3"});
  metrics::Table ov_table({"#endorsing_peers", "OR10", "OR3", "AND5", "AND3"});

  const auto present = [](const Column& col, int peers) {
    return std::find(col.peer_counts.begin(), col.peer_counts.end(), peers) !=
           col.peer_counts.end();
  };

  // Pass 1: find each configuration's peak (all probes are independent).
  benchutil::Sweep sweep(args);
  for (int peers : {1, 3, 5, 7, 10}) {
    for (const Column& col : kColumns) {
      if (!present(col, peers)) continue;
      const std::string point =
          std::string(col.label) + "/peers" + std::to_string(peers);
      sweep.Add(MakeConfig(col, peers, 60.0 * peers + 60.0, args),
                point + "/probe");
    }
  }
  const auto probes = sweep.Run();

  // Pass 2: measure latency near (but not past) each peak.
  std::size_t probe_next = 0;
  for (int peers : {1, 3, 5, 7, 10}) {
    for (const Column& col : kColumns) {
      if (!present(col, peers)) continue;
      const double peak =
          probes[probe_next++].report.end_to_end.throughput_tps;
      sweep.Add(MakeConfig(col, peers, 0.85 * peak, args),
                std::string(col.label) + "/peers" + std::to_string(peers));
    }
  }
  const auto measures = sweep.Run();

  std::size_t next = 0;
  for (int peers : {1, 3, 5, 7, 10}) {
    std::vector<std::string> exec_row{std::to_string(peers)};
    std::vector<std::string> ov_row{std::to_string(peers)};
    for (const Column& col : kColumns) {
      if (!present(col, peers)) {
        exec_row.push_back("-");
        ov_row.push_back("-");
        continue;
      }
      const auto& r = measures[next++].report;
      exec_row.push_back(metrics::Fmt(r.execute.mean_latency_s, 2));
      ov_row.push_back(metrics::Fmt(r.order_and_validate.mean_latency_s, 2));
    }
    exec_table.AddRow(std::move(exec_row));
    ov_table.AddRow(std::move(ov_row));
  }

  std::cout << "--- Execute latency (s) ---\n";
  benchutil::PrintTable(exec_table, args);
  std::cout << "--- Order & validate latency (s) ---\n";
  benchutil::PrintTable(ov_table, args);
  std::cout << "\nExpected shape: execute ~0.2-0.35 s under OR and higher "
               "under AND (multi-peer fan-out); order & validate highest "
               "(~0.5-0.8 s) at 1 peer (1 s BatchTimeout dominates at 50 "
               "tps) and near the 300 tps validate cap at 7-10 peers.\n";
  return benchutil::Finish(args);
}
