// Reproduces Fig. 6: per-phase latency vs arrival rate under OR — the
// execute latency vs the combined order & validate latency (the paper's
// black and cyan lines).
//
// Paper's findings to confirm: both stay stable before the peak; the
// order & validate latency rises once the arrival rate passes the validate
// phase's capacity (queueing effect).
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "fig6_phase_latency_or");

  std::cout << "=== Fig. 6: Per-phase latency under OR (s) ===\n";
  const std::vector<double> rates = benchutil::RateSweep(args);
  benchutil::Sweep sweep(args);
  for (int o = 0; o < 3; ++o) {
    for (double rate : rates) {
      fabric::ExperimentConfig config =
          fabric::StandardConfig(benchutil::OrderingAt(o), 0, rate);
      benchutil::Tune(config, args);
      sweep.Add(config, std::string(benchutil::kOrderings[o]) + " " +
                            metrics::Fmt(rate, 0) + " tps");
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (int o = 0; o < 3; ++o) {
    std::cout << "--- Ordering service: " << benchutil::kOrderings[o]
              << " ---\n";
    metrics::Table table({"arrival_tps", "execute_s", "order+validate_s"});
    for (double rate : rates) {
      const auto& r = results[next++].report;
      table.AddRow({metrics::Fmt(rate, 0),
                    metrics::Fmt(r.execute.mean_latency_s, 2),
                    metrics::Fmt(r.order_and_validate.mean_latency_s, 2)});
    }
    benchutil::PrintTable(table, args);
  }
  std::cout << "\nExpected shape: execute latency ~0.25-0.35 s throughout; "
               "order & validate ~0.4-0.6 s until ~300 tps, then climbing as "
               "the validate queue builds.\n";
  return benchutil::Finish(args);
}
