// Ablation: BatchSize / BatchTimeout vs block time and end-to-end latency
// (the §III defaults the paper fixes at BatchSize=100, BatchTimeout=1 s).
//
// Shows the two block-cutting regimes: below BatchSize*1/BatchTimeout tps
// the timeout cuts blocks (block time pinned at BatchTimeout, latency pays
// ~BatchTimeout/2 on average); above it the size trigger cuts (block time =
// BatchSize/rate, latency drops as blocks fill faster).
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "ablation_blockcutter");

  std::cout << "=== Ablation: block cutter (Solo, OR, 150 tps) ===\n";
  const std::vector<std::uint32_t> batches{10u, 50u, 100u, 200u};
  const std::vector<double> timeouts{0.25, 0.5, 1.0, 2.0};

  benchutil::Sweep sweep(args);
  for (std::uint32_t batch : batches) {
    fabric::ExperimentConfig config =
        fabric::StandardConfig(fabric::OrderingType::kSolo, 0, 150);
    config.network.channel.batch.max_message_count = batch;
    benchutil::Tune(config, args);
    sweep.Add(config, "BatchSize" + std::to_string(batch));
  }
  for (double timeout : timeouts) {
    fabric::ExperimentConfig config =
        fabric::StandardConfig(fabric::OrderingType::kSolo, 0, 150);
    config.network.channel.batch.batch_timeout = sim::FromSeconds(timeout);
    benchutil::Tune(config, args);
    sweep.Add(config, "BatchTimeout" + metrics::Fmt(timeout, 2));
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  std::cout << "--- BatchSize sweep (BatchTimeout = 1 s) ---\n";
  metrics::Table size_table(
      {"BatchSize", "block_time_s", "mean_block_txs", "e2e_latency_s"});
  for (std::uint32_t batch : batches) {
    const auto& r = results[next++].report;
    size_table.AddRow({std::to_string(batch),
                       metrics::Fmt(r.mean_block_time_s, 2),
                       metrics::Fmt(r.mean_block_size, 1),
                       metrics::Fmt(r.end_to_end.mean_latency_s, 2)});
  }
  benchutil::PrintTable(size_table, args);

  std::cout << "--- BatchTimeout sweep (BatchSize = 100) ---\n";
  metrics::Table timeout_table(
      {"BatchTimeout_s", "block_time_s", "mean_block_txs", "e2e_latency_s"});
  for (double timeout : timeouts) {
    const auto& r = results[next++].report;
    timeout_table.AddRow({metrics::Fmt(timeout, 2),
                          metrics::Fmt(r.mean_block_time_s, 2),
                          metrics::Fmt(r.mean_block_size, 1),
                          metrics::Fmt(r.end_to_end.mean_latency_s, 2)});
  }
  benchutil::PrintTable(timeout_table, args);

  std::cout << "\nExpected shape: at 150 tps, small BatchSize cuts early "
               "(low block time, low latency, more blocks); BatchTimeout "
               "governs block time only while blocks do not fill "
               "(150 tps < 100/timeout), and latency tracks ~timeout/2.\n";
  return benchutil::Finish(args);
}
