// Overload-knee characterization: goodput and tail latency through the
// saturation point, with overload protection off vs. on.
//
// The paper drives Fabric past its knee and watches latency blow up (Fig. 3:
// queues grow without bound, p99 follows). This bench reproduces that
// failure mode and demonstrates the fix: bounded ingress queues with
// admission control (SERVICE_UNAVAILABLE + retry-after at the OSN and the
// endorser, a bounded validation pipeline at the committer) plus client-side
// AIMD flow control. For each consenter type it
//   1. probes the saturation throughput (protection on, offered >> capacity);
//   2. sweeps offered load from 0.5x to 3x saturation, protection off and
//      on, reporting goodput, p50/p99 end-to-end latency, rejection rate,
//      and where the load was shed;
//   3. verifies the knee contract: without protection p99 degrades past the
//      knee; with protection p99 stays bounded and goodput holds >= 90% of
//      saturation at 2x offered load with zero invariant violations;
//   4. re-checks the invariants in a combined overload + leader-crash run
//      (Raft; Kafka too in the full sweep) — shedding plus failover must
//      still never lose an acked transaction nor commit a phantom.
//
//   ./build/bench/overload_knee [--quick] [--smoke] [--csv] [--attribution]
//
// --smoke is the CI tier: Solo + Raft only, short windows, the {0.5x, 2x}
// points — still failing on any invariant violation or unbounded latency.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace fabricsim;

namespace {

struct Point {
  double mult = 0.0;
  bool protection = false;
  double offered = 0.0;
  double goodput = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double reject_rate = 0.0;
  std::uint64_t shed = 0;
  std::uint64_t osn_shed = 0;
  std::uint64_t endorser_shed = 0;
  bool inv_checked = false;
  bool inv_ok = true;
};

// The protection-on p99 ceiling: bounded queues cap waiting time, so the
// tail must stay within a few block times even at 3x offered load.
constexpr double kBoundedP99s = 6.0;
// Without protection, p99 past the knee must visibly degrade vs. 0.5x.
constexpr double kDegradeFactor = 2.0;
// Goodput at 2x offered load with protection on vs. measured saturation.
constexpr double kGoodputFloor = 0.9;

void SetDurations(fabric::ExperimentConfig& config, bool quick, bool smoke) {
  config.warmup = sim::FromSeconds(5);
  config.workload.duration = sim::FromSeconds(smoke ? 12 : (quick ? 20 : 30));
  config.drain = sim::FromSeconds(smoke ? 10 : (quick ? 12 : 15));
}

fabric::ExperimentConfig BaseConfig(fabric::OrderingType ordering, double rate,
                                    bool protection, bool quick, bool smoke) {
  fabric::ExperimentConfig config = fabric::StandardConfig(ordering, 0, rate);
  // Enough client machines that the offered rate, not the per-client event
  // loop (~50 tps each), sets the load.
  config.network.topology.clients = smoke ? 12 : 24;
  SetDurations(config, quick, smoke);
  if (protection) {
    fabric::OverloadOptions& ov = config.network.overload;
    ov.enabled = true;
    ov.policy = sim::OverloadPolicy::kReject;
    ov.flow.enabled = true;
    // Short per-client launch queue: excess load sheds locally instead of
    // accruing as committed-tx latency, which keeps the protected tail flat.
    ov.flow.max_queue = 32;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args =
      benchutil::ParseArgs(argc, argv, "overload_knee");
  const bool smoke = args.smoke;

  const std::vector<double> mults =
      smoke ? std::vector<double>{0.5, 2.0}
            : (args.quick ? std::vector<double>{0.5, 1.0, 2.0, 3.0}
                          : std::vector<double>{0.5, 1.0, 1.5, 2.0, 3.0});
  const int orderings = smoke ? 2 : 3;  // smoke: Solo + Raft (index 0, 2)
  const double probe_rate = smoke ? 900.0 : 1500.0;

  metrics::Table table({"ordering", "protection", "mult", "offered_tps",
                        "goodput_tps", "p50_s", "p99_s", "reject_rate",
                        "client_shed", "osn_shed", "endorser_shed",
                        "invariants"});
  bool ok = true;

  // 1. Saturation probes, one per consenter: protection on, offered load far
  // past capacity — flow control pins the system at its service rate and
  // goodput reads off the plateau without unbounded queue growth. The probes
  // are independent, so they run as one parallel batch.
  benchutil::Sweep sweep(args);
  for (int oi = 0; oi < orderings; ++oi) {
    const int idx = smoke ? (oi == 0 ? 0 : 2) : oi;
    auto config = BaseConfig(benchutil::OrderingAt(idx), probe_rate, true,
                             args.quick, smoke);
    sweep.Add(config, std::string(benchutil::kOrderings[idx]) + " probe");
  }
  const auto probes = sweep.Run();

  std::vector<double> sats(orderings, 0.0);
  for (int oi = 0; oi < orderings; ++oi) {
    const int idx = smoke ? (oi == 0 ? 0 : 2) : oi;
    const char* name = benchutil::kOrderings[idx];
    sats[oi] = probes[oi].report.goodput_tps;
    std::printf("%s saturation: %.1f tps\n", name, sats[oi]);
    if (sats[oi] <= 0.0) {
      std::printf("%s: saturation probe produced no goodput\n", name);
      ok = false;
    }
  }

  // 2. The sweeps — every (mult, protection) point plus the combined
  // overload+faults run only depend on the probed saturation, so they all
  // go into one second batch.
  auto combined_for = [&](fabric::OrderingType ordering) {
    return ordering == fabric::OrderingType::kRaft ||
           (!smoke && !args.quick && ordering == fabric::OrderingType::kKafka);
  };
  for (int oi = 0; oi < orderings; ++oi) {
    const int idx = smoke ? (oi == 0 ? 0 : 2) : oi;
    const fabric::OrderingType ordering = benchutil::OrderingAt(idx);
    const char* name = benchutil::kOrderings[idx];
    const double sat = sats[oi];
    if (sat <= 0.0) continue;
    for (const double m : mults) {
      for (const bool protection : {false, true}) {
        auto config =
            BaseConfig(ordering, m * sat, protection, args.quick, smoke);
        // Invariant-check the protection-on 2x point: the acceptance bar is
        // zero acked-but-lost and zero phantom commits while shedding.
        config.check_invariants = protection && m == 2.0;
        char label[64];
        std::snprintf(label, sizeof(label), "%s %s %.1fx", name,
                      protection ? "on" : "off", m);
        sweep.Add(config, label);
      }
    }
    // Combined overload + crash/revive: shedding while the consenter fails
    // over must still keep the ledger invariants intact. Solo is skipped —
    // its single OSN stalls on crash by design (fault_recovery covers that
    // finding).
    if (combined_for(ordering)) {
      auto config = BaseConfig(ordering, 2.0 * sat, true, args.quick, smoke);
      const double crash_s = smoke ? 8.0 : 12.0;
      char spec[64];
      std::snprintf(spec, sizeof(spec), "crash:leader@%.0fs,revive@%.0fs",
                    crash_s, crash_s + (smoke ? 5.0 : 8.0));
      config.faults = spec;
      sweep.Add(config, std::string(name) + " overload+faults");
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (int oi = 0; oi < orderings; ++oi) {
    const int idx = smoke ? (oi == 0 ? 0 : 2) : oi;
    const fabric::OrderingType ordering = benchutil::OrderingAt(idx);
    const char* name = benchutil::kOrderings[idx];
    const double sat = sats[oi];
    if (sat <= 0.0) continue;

    std::vector<Point> points;
    for (const double m : mults) {
      for (const bool protection : {false, true}) {
        const bool check = protection && m == 2.0;
        const auto& result = results[next++];

        Point p;
        p.mult = m;
        p.protection = protection;
        p.offered = m * sat;
        p.goodput = result.report.goodput_tps;
        p.p50_s = result.report.end_to_end.p50_latency_s;
        p.p99_s = result.report.end_to_end.p99_latency_s;
        p.reject_rate = result.report.rejection_rate;
        p.shed = result.report.shed;
        p.osn_shed = result.osn_shed;
        p.endorser_shed = result.endorser_shed;
        if (check) {
          p.inv_checked = true;
          p.inv_ok = result.invariants && result.invariants->Ok();
          if (!p.inv_ok && result.invariants) {
            std::printf("%s\n", result.invariants->Summary().c_str());
          }
        }
        points.push_back(p);

        table.AddRow({name, protection ? "on" : "off", metrics::Fmt(m, 1),
                      metrics::Fmt(p.offered, 1), metrics::Fmt(p.goodput, 1),
                      metrics::Fmt(p.p50_s, 3), metrics::Fmt(p.p99_s, 3),
                      metrics::Fmt(p.reject_rate, 3), std::to_string(p.shed),
                      std::to_string(p.osn_shed),
                      std::to_string(p.endorser_shed),
                      p.inv_checked ? (p.inv_ok ? "ok" : "VIOLATED") : "-"});
      }
    }

    // 3. The knee contract.
    auto find = [&](double m, bool prot) -> const Point* {
      for (const Point& p : points) {
        if (p.mult == m && p.protection == prot) return &p;
      }
      return nullptr;
    };
    const double max_mult = mults.back();
    const Point* off_lo = find(mults.front(), false);
    const Point* off_hi = find(max_mult, false);
    const Point* on_hi = find(max_mult, true);
    const Point* on_2x = find(2.0, true);

    bool o_ok = true;
    if (off_lo == nullptr || off_hi == nullptr || on_hi == nullptr ||
        on_2x == nullptr) {
      o_ok = false;
    } else {
      const double base_p99 = std::max(off_lo->p99_s, 1e-3);
      if (off_hi->p99_s < kDegradeFactor * base_p99) {
        std::printf("%s: unprotected p99 did not degrade past the knee "
                    "(%.3fs at %.1fx vs %.3fs at %.1fx)\n",
                    name, off_hi->p99_s, max_mult, off_lo->p99_s,
                    mults.front());
        o_ok = false;
      }
      if (on_hi->p99_s > kBoundedP99s) {
        std::printf("%s: protected p99 unbounded: %.3fs at %.1fx\n", name,
                    on_hi->p99_s, max_mult);
        o_ok = false;
      }
      if (on_2x->goodput < kGoodputFloor * sat) {
        std::printf("%s: protected goodput collapsed at 2x: %.1f < %.0f%% "
                    "of %.1f tps\n",
                    name, on_2x->goodput, kGoodputFloor * 100.0, sat);
        o_ok = false;
      }
      if (!on_2x->inv_ok) {
        std::printf("%s: invariants violated under shedding at 2x\n", name);
        o_ok = false;
      }
    }

    // 4. Combined overload + crash/revive (queued alongside the sweep
    // points above).
    if (combined_for(ordering)) {
      const auto& result = results[next++];
      const double crash_s = smoke ? 8.0 : 12.0;
      char spec[64];
      std::snprintf(spec, sizeof(spec), "crash:leader@%.0fs,revive@%.0fs",
                    crash_s, crash_s + (smoke ? 5.0 : 8.0));
      const bool inv_ok = result.invariants && result.invariants->Ok();
      std::printf("%s overload + %s: invariants %s, goodput %.1f tps\n", name,
                  spec, inv_ok ? "ok" : "VIOLATED",
                  result.report.goodput_tps);
      if (!inv_ok) {
        if (result.invariants) {
          std::printf("%s\n", result.invariants->Summary().c_str());
        }
        o_ok = false;
      }
    }

    ok = ok && o_ok;
  }

  benchutil::PrintTable(table, args);
  std::cout << (ok ? "OVERLOAD KNEE OK\n" : "OVERLOAD KNEE FAILED\n");
  return benchutil::Finish(args, ok);
}
