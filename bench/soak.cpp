// Million-transaction soak: bounded-memory accounting vs. full-record mode.
//
// The tentpole claim of the streaming metrics core is that per-run memory no
// longer grows with the number of transactions: the TxTracker folds each
// record into windowed sketches the moment its outcome is final, and the
// ledger retention bounds keep the block store / history index / OSN
// backfill maps at O(retained window). This bench proves it by running the
// same configuration at two scales and in both tracker modes:
//
//   1. streaming/small  — the reference scale (100k txs in the full tier);
//   2. streaming/large  — 10x the transactions. Peak RSS must stay within
//      1.2x of the small run, and the deterministic witness — the peak
//      concurrent record count — must stay at O(inflight), not O(total);
//   3. full/large       — the legacy accounting at the same large scale,
//      run LAST (ru_maxrss is monotonic process-wide): its record count
//      grows with every submitted transaction, which is the unbounded
//      behaviour the streaming mode removes.
//
// Points run strictly sequentially on one thread (RSS ordering matters), a
// single repetition each — the binary overrides --jobs/--reps.
//
//   ./build/bench/soak [--quick] [--smoke] [--csv] [--json <path>]
//
// --smoke is the CI tier (25k / 250k transactions); the acceptance
// contract — flat RSS, flat records_hwm, zero late marks, full mode
// visibly unbounded — is checked at every tier.
#include <cstdio>
#include <string>

#include "bench_common.h"

using namespace fabricsim;

namespace {

constexpr double kRateTps = 250.0;
// Streaming-vs-small peak-RSS ceiling at 10x the transactions.
constexpr double kRssRatioCeiling = 1.2;
// Streaming records_hwm at 10x scale vs. the small run: inflight is set by
// rate x latency, not by run length, so the ratio must stay near 1.
constexpr double kHwmRatioCeiling = 2.0;
// Full-record mode must be measurably unbounded vs. streaming at the same
// scale — its records_hwm is the total transaction count.
constexpr double kUnboundedFactor = 5.0;

fabric::ExperimentConfig SoakConfig(double duration_s, bool streaming) {
  fabric::ExperimentConfig config =
      fabric::StandardConfig(fabric::OrderingType::kSolo, 0, kRateTps);
  config.workload.duration = sim::FromSeconds(duration_s);
  config.warmup = sim::FromSeconds(5);
  config.drain = sim::FromSeconds(15);
  config.streaming_stats = streaming;
  // Steady-state workload: kKvWrite mints a fresh key per transaction, so
  // the world state itself (legitimate application data, on every peer)
  // would grow with run length and mask the tracker comparison. Read-write
  // over a fixed key space keeps state size constant; the occasional MVCC
  // conflict it produces is deterministic.
  config.workload.kind = client::WorkloadKind::kKvReadWrite;
  config.workload.key_space = 1000;
  // Ledger-side retention: without it the block store and history index
  // grow with every block regardless of the tracker mode. The history
  // index's steady state is key_space x history_per_key x peers entries;
  // keep that small enough to saturate well inside the SMALL run, or the
  // small-vs-large RSS comparison measures history fill, not the tracker.
  config.network.retention.ledger_blocks = 64;
  config.network.retention.history_per_key = 4;
  config.network.retention.osn_history_blocks = 64;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv, "soak");
  // Sequential, single-rep by contract: points must run in this order on
  // one thread for the peak-RSS comparison to mean anything.
  args.jobs = 1;
  args.reps = 1;
  benchutil::RecorderSlot() = std::make_unique<bench::Recorder>(
      "soak", args.Mode(), args.crypto_cache, 1, 1);
  benchutil::RecorderSlot()->SetEmitTrackerStats(true);

  const double small_s =
      args.smoke ? 100.0 : (args.quick ? 200.0 : 400.0);  // 25k/50k/100k txs
  const double large_s = 10.0 * small_s;                  // 10x transactions

  metrics::Table table({"point", "txs", "records_hwm", "retired", "late_marks",
                        "peak_rss_kb", "chain_audit"});
  bool ok = true;

  struct Row {
    fabric::ExperimentResult result;
    std::uint64_t rss_kb = 0;
  };
  auto run = [&](double duration_s, bool streaming,
                 const std::string& label) {
    Row row;
    row.result = benchutil::RunPoint(SoakConfig(duration_s, streaming), args,
                                     label);
    row.rss_kb = bench::PeakRssKb();
    ok = ok && row.result.chain_audit_ok;
    table.AddRow({label, std::to_string(row.result.generated),
                  std::to_string(row.result.tracker.records_hwm),
                  std::to_string(row.result.tracker.retired),
                  std::to_string(row.result.tracker.late_marks),
                  std::to_string(row.rss_kb),
                  row.result.chain_audit_ok ? "OK" : "FAILED"});
    return row;
  };

  const Row small = run(small_s, true, "streaming/small");
  const Row large = run(large_s, true, "streaming/large");
  const Row full = run(large_s, false, "full/large");

  // The streaming contract: the bounded-memory path actually engaged, and
  // no mark ever arrived after its record was retired (late marks would
  // mean streaming and full mode could disagree).
  for (const Row* r : {&small, &large}) {
    if (!r->result.tracker.streaming) {
      std::printf("soak: streaming accounting did not engage\n");
      ok = false;
    }
    if (r->result.tracker.late_marks != 0) {
      std::printf("soak: %llu late marks (streaming must see every mark "
                  "before retirement)\n",
                  static_cast<unsigned long long>(r->result.tracker.late_marks));
      ok = false;
    }
  }

  // Bounded memory, deterministic witness: peak concurrent records is set
  // by rate x latency, so 10x the transactions must not move it.
  if (large.result.tracker.records_hwm >
      static_cast<std::uint64_t>(
          kHwmRatioCeiling *
          static_cast<double>(small.result.tracker.records_hwm))) {
    std::printf("soak: streaming records_hwm grew with run length: "
                "%llu -> %llu at 10x txs\n",
                static_cast<unsigned long long>(small.result.tracker.records_hwm),
                static_cast<unsigned long long>(large.result.tracker.records_hwm));
    ok = false;
  }

  // Bounded memory, host witness: peak RSS flat across 10x the
  // transactions (full mode runs after this check, so its growth cannot
  // contaminate the monotonic ru_maxrss reading).
  if (static_cast<double>(large.rss_kb) >
      kRssRatioCeiling * static_cast<double>(small.rss_kb)) {
    std::printf("soak: streaming peak RSS not flat: %llu kB -> %llu kB "
                "(ceiling %.1fx)\n",
                static_cast<unsigned long long>(small.rss_kb),
                static_cast<unsigned long long>(large.rss_kb),
                kRssRatioCeiling);
    ok = false;
  }

  // Full-record mode at the same scale keeps every record: its high
  // watermark is the total transaction count, which is the unbounded
  // growth streaming removes.
  if (static_cast<double>(full.result.tracker.records_hwm) <
      kUnboundedFactor *
          static_cast<double>(large.result.tracker.records_hwm)) {
    std::printf("soak: full-record mode not measurably unbounded: hwm %llu "
                "vs streaming %llu\n",
                static_cast<unsigned long long>(full.result.tracker.records_hwm),
                static_cast<unsigned long long>(large.result.tracker.records_hwm));
    ok = false;
  }

  // Equivalence spot check at the large scale: the two modes share one fold
  // (metrics::TxTracker), so every reported figure must agree bit-exactly.
  if (full.result.chain_head_hex != large.result.chain_head_hex ||
      full.result.report.goodput_tps != large.result.report.goodput_tps ||
      full.result.report.submitted != large.result.report.submitted ||
      full.result.report.end_to_end.mean_latency_s !=
          large.result.report.end_to_end.mean_latency_s) {
    std::printf("soak: streaming and full-record reports disagree\n");
    ok = false;
  }

  benchutil::PrintTable(table, args);
  std::cout << (ok ? "SOAK OK\n" : "SOAK FAILED\n");
  return benchutil::Finish(args, ok);
}
