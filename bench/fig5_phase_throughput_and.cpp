// Reproduces Fig. 5: per-phase throughput vs arrival rate under the AND(5)
// endorsement policy, for each ordering service.
//
// Paper's findings to confirm: scalability under ANDx is poor — the
// validate phase caps near 200-210 tps because VSCC must verify five
// endorsement signatures per transaction.
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args =
      benchutil::ParseArgs(argc, argv, "fig5_phase_throughput_and");

  std::cout << "=== Fig. 5: Per-phase throughput under AND5 (tps) ===\n";
  const std::vector<double> rates = benchutil::RateSweep(args);
  benchutil::Sweep sweep(args);
  for (int o = 0; o < 3; ++o) {
    for (double rate : rates) {
      fabric::ExperimentConfig config =
          fabric::StandardConfig(benchutil::OrderingAt(o), 5, rate);
      benchutil::Tune(config, args);
      sweep.Add(config, std::string(benchutil::kOrderings[o]) + "@" +
                            metrics::Fmt(rate, 0));
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (int o = 0; o < 3; ++o) {
    std::cout << "--- Ordering service: " << benchutil::kOrderings[o]
              << " ---\n";
    metrics::Table table({"arrival_tps", "execute", "order", "validate"});
    for (double rate : rates) {
      const auto& r = results[next++].report;
      table.AddRow({metrics::Fmt(rate, 0),
                    metrics::Fmt(r.execute.throughput_tps, 1),
                    metrics::Fmt(r.order.throughput_tps, 1),
                    metrics::Fmt(r.validate.throughput_tps, 1)});
    }
    benchutil::PrintTable(table, args);
  }
  std::cout << "\nExpected shape: the validate phase plateaus around "
               "200-210 tps (five signature verifications per transaction); "
               "execute tracks the arrival rate further before the client "
               "ceiling binds.\n";
  return benchutil::Finish(args);
}
