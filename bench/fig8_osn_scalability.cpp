// Reproduces Fig. 8: throughput and latency vs the number of ordering
// service nodes, for Kafka and Raft, with #ZooKeeper = #Broker = 3 (panels
// a/b) and 7 (panels c/d).
//
// Paper's findings to confirm: neither throughput nor latency changes
// significantly when scaling OSNs up to 12, for either consenter, at either
// broker/ZooKeeper cluster size — the ordering service is not the
// bottleneck.
#include "bench_common.h"

using namespace fabricsim;

namespace {

fabric::ExperimentConfig MakeConfig(fabric::OrderingType ordering, int osns,
                                    int brokers_and_zk,
                                    const benchutil::Args& args) {
  fabric::ExperimentConfig config = fabric::StandardConfig(ordering, 0, 250);
  config.network.topology.osns = osns;
  config.network.topology.kafka_brokers = brokers_and_zk;
  config.network.topology.zookeepers = brokers_and_zk;
  config.network.topology.kafka_replication_factor =
      std::min(3, brokers_and_zk);
  benchutil::Tune(config, args);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "fig8_osn_scalability");
  const std::vector<int> osn_counts =
      args.quick ? std::vector<int>{4, 12} : std::vector<int>{4, 6, 8, 10, 12};

  benchutil::Sweep sweep(args);
  for (int cluster : {3, 7}) {
    for (int osns : osn_counts) {
      const std::string suffix = "zk" + std::to_string(cluster) + "/osn" +
                                 std::to_string(osns);
      sweep.Add(MakeConfig(fabric::OrderingType::kKafka, osns, cluster, args),
                "Kafka/" + suffix);
      sweep.Add(MakeConfig(fabric::OrderingType::kRaft, osns, cluster, args),
                "Raft/" + suffix);
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (int cluster : {3, 7}) {
    std::cout << "=== Fig. 8 (" << (cluster == 3 ? "a,b" : "c,d")
              << "): #ZooKeeper = #Broker = " << cluster
              << ", arrival rate 250 tps ===\n";
    metrics::Table table({"#OSNs", "Kafka_tps", "Kafka_lat_s", "Raft_tps",
                          "Raft_lat_s"});
    for (int osns : osn_counts) {
      const auto& kafka = results[next++];
      const auto& raft = results[next++];
      table.AddRow(
          {std::to_string(osns),
           metrics::Fmt(kafka.report.end_to_end.throughput_tps, 1),
           metrics::Fmt(kafka.report.end_to_end.mean_latency_s, 2),
           metrics::Fmt(raft.report.end_to_end.throughput_tps, 1),
           metrics::Fmt(raft.report.end_to_end.mean_latency_s, 2)});
    }
    benchutil::PrintTable(table, args);
  }
  std::cout << "\nExpected shape: flat columns — ~250 tps committed and "
               "stable latency regardless of OSN count, consenter type, or "
               "broker/ZooKeeper cluster size.\n";
  return benchutil::Finish(args);
}
