// Ablation: transaction (value) size — the workload factor the paper's
// related-work discussion singles out ("the workload may have different ...
// transaction size"); the paper's own experiments fix it at 1 byte.
//
// Larger values inflate every wire message (proposal, response, envelope,
// block) and the block-hash/ledger-write work, pushing the 1 Gbps network
// and the serialization paths toward relevance.
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "ablation_txsize");

  std::cout << "=== Ablation: value size (Solo, OR) ===\n";
  metrics::Table table({"value_bytes", "offered_tps", "committed_tps",
                        "e2e_latency_s", "MB_on_wire", "block_time_s"});
  const std::vector<std::size_t> sizes{std::size_t{1}, std::size_t{1024},
                                       std::size_t{10 * 1024},
                                       std::size_t{100 * 1024}};
  benchutil::Sweep sweep(args);
  for (std::size_t size : sizes) {
    // Huge values saturate the wire far below the validate ceiling; offer
    // less so the latency number is a steady-state one.
    const double rate = size >= 100 * 1024 ? 40.0 : 200.0;
    fabric::ExperimentConfig config =
        fabric::StandardConfig(fabric::OrderingType::kSolo, 0, rate);
    config.workload.value_size = size;
    benchutil::Tune(config, args);
    if (size >= 100 * 1024) {
      config.workload.duration = sim::FromSeconds(15);  // wall-time bound
    }
    sweep.Add(config, "value" + std::to_string(size) + "B");
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (std::size_t size : sizes) {
    const double rate = size >= 100 * 1024 ? 40.0 : 200.0;
    const auto& result = results[next++];
    table.AddRow({std::to_string(size), metrics::Fmt(rate, 0),
                  metrics::Fmt(result.report.end_to_end.throughput_tps, 1),
                  metrics::Fmt(result.report.end_to_end.mean_latency_s, 2),
                  metrics::Fmt(static_cast<double>(result.bytes_sent) / 1e6, 0),
                  metrics::Fmt(result.report.mean_block_time_s, 2)});
  }
  benchutil::PrintTable(table, args);
  std::cout << "\nExpected shape: negligible impact through ~1 KiB. From "
               "~10 KiB, PreferredMaxBytes cuts blocks early (block time "
               "and latency drop, blocks shrink); at 100 KiB the wire "
               "volume dominates — 200 tps would exceed the 1 Gbps fabric, "
               "which is why the offered rate is lowered to keep the system "
               "in steady state.\n";
  return benchutil::Finish(args);
}
