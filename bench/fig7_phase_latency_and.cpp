// Reproduces Fig. 7: per-phase latency vs arrival rate under AND(5).
//
// Paper's findings to confirm: latencies are stable before the (earlier)
// AND peak and grow sharply once the arrival rate passes it.
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "fig7_phase_latency_and");

  std::cout << "=== Fig. 7: Per-phase latency under AND5 (s) ===\n";
  const std::vector<double> rates = benchutil::RateSweep(args);
  benchutil::Sweep sweep(args);
  for (int o = 0; o < 3; ++o) {
    for (double rate : rates) {
      fabric::ExperimentConfig config =
          fabric::StandardConfig(benchutil::OrderingAt(o), 5, rate);
      benchutil::Tune(config, args);
      sweep.Add(config, std::string(benchutil::kOrderings[o]) + " " +
                            metrics::Fmt(rate, 0) + " tps");
    }
  }
  const auto results = sweep.Run();

  std::size_t next = 0;
  for (int o = 0; o < 3; ++o) {
    std::cout << "--- Ordering service: " << benchutil::kOrderings[o]
              << " ---\n";
    metrics::Table table({"arrival_tps", "execute_s", "order+validate_s"});
    for (double rate : rates) {
      const auto& r = results[next++].report;
      table.AddRow({metrics::Fmt(rate, 0),
                    metrics::Fmt(r.execute.mean_latency_s, 2),
                    metrics::Fmt(r.order_and_validate.mean_latency_s, 2)});
    }
    benchutil::PrintTable(table, args);
  }
  std::cout << "\nExpected shape: execute latency higher than under OR "
               "(five-peer fan-out, straggler effect); order & validate "
               "explodes past ~200 tps — earlier than OR's knee.\n";
  return benchutil::Finish(args);
}
