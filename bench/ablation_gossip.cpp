// Ablation: gossip block dissemination vs direct orderer delivery.
//
// The related work the paper cites ([2]) found block propagation bandwidth
// can become the bottleneck. Gossip moves the fan-out from the orderer NIC
// to the peers: with g leader peers, the orderer sends each block g times
// instead of P times. The cost is one extra dissemination hop on the
// commit path (a few hundred microseconds on a LAN).
#include "bench_common.h"

using namespace fabricsim;

int main(int argc, char** argv) {
  const auto args = benchutil::ParseArgs(argc, argv, "ablation_gossip");

  std::cout << "=== Ablation: gossip dissemination (Solo, OR, 250 tps, "
               "10 peers) ===\n";
  metrics::Table table({"mode", "committed_tps", "e2e_latency_s",
                        "validate_latency_s", "total_MB_on_wire"});
  benchutil::Sweep sweep(args);
  std::vector<std::string> labels;
  for (int mode = 0; mode < 3; ++mode) {
    fabric::ExperimentConfig config =
        fabric::StandardConfig(fabric::OrderingType::kSolo, 0, 250);
    std::string label = "direct (11 subscribers)";
    if (mode == 1) {
      config.network.gossip = true;
      config.network.gossip_leaders = 2;
      label = "gossip (2 leaders)";
    } else if (mode == 2) {
      config.network.gossip = true;
      config.network.gossip_leaders = 4;
      label = "gossip (4 leaders)";
    }
    benchutil::Tune(config, args);
    labels.push_back(label);
    sweep.Add(config, std::move(label));
  }
  const auto results = sweep.Run();

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    table.AddRow({labels[i],
                  metrics::Fmt(result.report.end_to_end.throughput_tps, 1),
                  metrics::Fmt(result.report.end_to_end.mean_latency_s, 2),
                  metrics::Fmt(result.report.validate.mean_latency_s, 2),
                  metrics::Fmt(static_cast<double>(result.bytes_sent) / 1e6,
                               0)});
  }
  benchutil::PrintTable(table, args);
  std::cout << "\nExpected shape: identical throughput; gossip adds a small "
               "dissemination delay to the validate latency (commit events "
               "come from a non-leader peer) and shifts wire bytes from the "
               "orderer to the peers without changing the total much (same "
               "blocks traverse the LAN).\n";
  return benchutil::Finish(args);
}
