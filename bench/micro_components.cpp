// Component microbenchmarks (google-benchmark): the substrate operations
// whose calibrated simulated costs DESIGN.md documents. These measure the
// *implementation's* real speed (host CPU), independent of simulated time.
#include <benchmark/benchmark.h>

#include "crypto/ca.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "ledger/mvcc.h"
#include "ledger/state_db.h"
#include "ordering/block_cutter.h"
#include "policy/evaluator.h"
#include "policy/parser.h"
#include "proto/transaction.h"

namespace {

using namespace fabricsim;

void BM_Sha256(benchmark::State& state) {
  const proto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<proto::Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back(proto::ToBytes("leaf-" + std::to_string(i)));
  }
  for (auto _ : state) {
    crypto::MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.Root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(10)->Arg(100)->Arg(1000);

void BM_SignVerify(benchmark::State& state) {
  const auto kp = crypto::KeyPair::Derive("bench");
  const auto msg = proto::ToBytes(std::string(500, 'x'));
  const auto sig = kp.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Verify(kp.PublicKey(), msg, sig));
  }
}
BENCHMARK(BM_SignVerify);

void BM_PolicyParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::MustParsePolicy(
        "OutOf(2,AND('A.peer','B.peer'),'C.peer',OR('D.peer','E.peer'))"));
  }
}
BENCHMARK(BM_PolicyParse);

void BM_PolicyEvaluate(benchmark::State& state) {
  const auto p = policy::MustParsePolicy(
      "OutOf(3,'A.peer','B.peer','C.peer','D.peer','E.peer')");
  std::vector<crypto::Principal> signers;
  for (const char* org : {"B", "D", "E"}) {
    signers.push_back({org, crypto::Role::kPeer});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::Satisfied(p, signers));
  }
}
BENCHMARK(BM_PolicyEvaluate);

void BM_StateDbPutGet(benchmark::State& state) {
  ledger::StateDb db;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(i % 10000);
    db.Put("cc", key, proto::ToBytes("v"), proto::KeyVersion{i, 0});
    benchmark::DoNotOptimize(db.Get("cc", key));
    ++i;
  }
}
BENCHMARK(BM_StateDbPutGet);

proto::TransactionEnvelope BenchTx(int i) {
  proto::TransactionEnvelope tx;
  tx.tx_id = "tx" + std::to_string(i);
  tx.chaincode_id = "cc";
  proto::NsReadWriteSet ns;
  ns.ns = "cc";
  ns.reads.push_back(proto::KVRead{"k" + std::to_string(i), std::nullopt});
  ns.writes.push_back(
      proto::KVWrite{"k" + std::to_string(i), proto::ToBytes("v"), false});
  tx.rwset.ns_rwsets.push_back(std::move(ns));
  return tx;
}

void BM_MvccValidateBlock(benchmark::State& state) {
  ledger::StateDb db;
  std::vector<proto::TransactionEnvelope> txs;
  for (int i = 0; i < state.range(0); ++i) txs.push_back(BenchTx(i));
  const auto block = proto::Block::Make(0, nullptr, txs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ledger::MvccValidator::Validate(block, db));
  }
}
BENCHMARK(BM_MvccValidateBlock)->Arg(10)->Arg(100);

void BM_EnvelopeSerialize(benchmark::State& state) {
  for (auto _ : state) {
    // Fresh envelope each round: measures real serialization, not the cache.
    auto tx = BenchTx(7);
    benchmark::DoNotOptimize(tx.Serialize());
  }
}
BENCHMARK(BM_EnvelopeSerialize);

void BM_BlockCutter(benchmark::State& state) {
  ordering::BatchConfig cfg;
  ordering::BlockCutter cutter(cfg);
  auto env = std::make_shared<proto::TransactionEnvelope>(BenchTx(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cutter.Ordered(env, 700));
  }
}
BENCHMARK(BM_BlockCutter);

void BM_IdentityCacheHit(benchmark::State& state) {
  crypto::MspRegistry msps;
  const auto& ca = msps.AddOrganization("Org1MSP");
  const auto cert = ca.Enroll("peer0", crypto::Role::kPeer).Cert().Serialize();
  benchmark::DoNotOptimize(msps.CachedCertificate(cert));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(msps.CachedCertificate(cert));
  }
}
BENCHMARK(BM_IdentityCacheHit);

}  // namespace

BENCHMARK_MAIN();
